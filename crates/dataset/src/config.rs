//! Fleet-simulation configuration.

use crate::error::DatasetError;
use crate::model::DriveModel;
use std::collections::BTreeMap;

/// Length of the paper's dataset window: two years of daily SMART logs.
pub const DEFAULT_DAYS: u32 = 730;

/// Configuration of a synthetic fleet.
///
/// Build one with [`FleetConfig::builder`], or use the presets
/// [`FleetConfig::balanced`] (equal drives per model — right for per-model
/// experiments) and [`FleetConfig::proportional`] (population mix of
/// Table II — right for fleet-level census statistics).
///
/// # Example
///
/// ```
/// use smart_dataset::{DriveModel, FleetConfig};
///
/// # fn main() -> Result<(), smart_dataset::DatasetError> {
/// let config = FleetConfig::builder()
///     .days(365)
///     .seed(7)
///     .drives(DriveModel::Mc1, 100)
///     .build()?;
/// assert_eq!(config.total_drives(), 100);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FleetConfig {
    days: u32,
    seed: u64,
    drives: BTreeMap<DriveModel, u32>,
    failure_scale: f64,
    per_model_scale: BTreeMap<DriveModel, f64>,
    max_initial_age_days: u32,
    arrival_fraction: f64,
}

impl FleetConfig {
    /// Start building a configuration.
    pub fn builder() -> FleetConfigBuilder {
        FleetConfigBuilder::default()
    }

    /// Equal drive counts for all six models, with the default per-model
    /// failure boosts that keep failure counts usable for low-AFR models at
    /// small scale (see DESIGN.md §2).
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::InvalidConfig`] if `per_model == 0`.
    pub fn balanced(per_model: u32, seed: u64) -> Result<FleetConfig, DatasetError> {
        let mut b = FleetConfig::builder().seed(seed);
        for m in DriveModel::ALL {
            b = b.drives(m, per_model);
        }
        b.per_model_scale(DriveModel::Ma2, 4.0)
            .per_model_scale(DriveModel::Mb2, 3.0)
            .build()
    }

    /// Drive counts proportional to the paper's population mix (Table II),
    /// with no per-model failure boost — the census preset used for AFR
    /// statistics and survival curves.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::InvalidConfig`] if `total` is too small to
    /// give every model at least one drive.
    pub fn proportional(total: u32, seed: u64) -> Result<FleetConfig, DatasetError> {
        let mut b = FleetConfig::builder().seed(seed).failure_scale(1.0);
        for m in DriveModel::ALL {
            let n = (total as f64 * m.population_share()).round() as u32;
            if n == 0 {
                return Err(DatasetError::InvalidConfig {
                    message: format!("total {total} leaves model {m} with zero drives"),
                });
            }
            b = b.drives(m, n);
        }
        b.build()
    }

    /// Dataset window length in days.
    pub fn days(&self) -> u32 {
        self.days
    }

    /// Master RNG seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of drives configured for `model`.
    pub fn drives_for(&self, model: DriveModel) -> u32 {
        self.drives.get(&model).copied().unwrap_or(0)
    }

    /// Total number of drives across all models.
    pub fn total_drives(&self) -> u32 {
        self.drives.values().sum()
    }

    /// Models with at least one drive configured.
    pub fn models(&self) -> impl Iterator<Item = DriveModel> + '_ {
        self.drives.iter().filter(|(_, &n)| n > 0).map(|(&m, _)| m)
    }

    /// Global failure-probability multiplier.
    pub fn failure_scale(&self) -> f64 {
        self.failure_scale
    }

    /// The effective failure multiplier for `model` (global × per-model).
    pub fn effective_failure_scale(&self, model: DriveModel) -> f64 {
        self.failure_scale * self.per_model_scale.get(&model).copied().unwrap_or(1.0)
    }

    /// Maximum in-service age (days) a drive may have when the window opens.
    pub fn max_initial_age_days(&self) -> u32 {
        self.max_initial_age_days
    }

    /// Fraction of drives deployed *during* the window rather than before.
    pub fn arrival_fraction(&self) -> f64 {
        self.arrival_fraction
    }
}

// Written by hand rather than via `json::impl_json!` because the two
// BTreeMaps are keyed by `DriveModel`, which serializes as its variant name.
impl json::ToJson for FleetConfig {
    fn to_json(&self) -> json::Value {
        let model_map = |fields: Vec<(String, json::Value)>| json::Value::Object(fields);
        json::Value::Object(vec![
            ("days".to_string(), json::ToJson::to_json(&self.days)),
            ("seed".to_string(), json::ToJson::to_json(&self.seed)),
            (
                "drives".to_string(),
                model_map(
                    self.drives
                        .iter()
                        .map(|(m, n)| (m.name().to_string(), json::ToJson::to_json(n)))
                        .collect(),
                ),
            ),
            (
                "failure_scale".to_string(),
                json::ToJson::to_json(&self.failure_scale),
            ),
            (
                "per_model_scale".to_string(),
                model_map(
                    self.per_model_scale
                        .iter()
                        .map(|(m, s)| (m.name().to_string(), json::ToJson::to_json(s)))
                        .collect(),
                ),
            ),
            (
                "max_initial_age_days".to_string(),
                json::ToJson::to_json(&self.max_initial_age_days),
            ),
            (
                "arrival_fraction".to_string(),
                json::ToJson::to_json(&self.arrival_fraction),
            ),
        ])
    }
}

impl json::FromJson for FleetConfig {
    fn from_json(value: &json::Value) -> Result<FleetConfig, json::JsonError> {
        fn model_map<V: json::FromJson>(
            value: &json::Value,
            key: &str,
        ) -> Result<BTreeMap<DriveModel, V>, json::JsonError> {
            value
                .field(key)
                .ok_or_else(|| json::JsonError::missing_field(key))?
                .as_object()
                .ok_or_else(|| json::JsonError::conversion(format!("{key} must be an object")))?
                .iter()
                .map(|(name, v)| {
                    let model = DriveModel::from_name(name).ok_or_else(|| {
                        json::JsonError::conversion(format!("unknown drive model {name:?}"))
                    })?;
                    Ok((model, V::from_json(v)?))
                })
                .collect()
        }
        fn field<V: json::FromJson>(value: &json::Value, key: &str) -> Result<V, json::JsonError> {
            V::from_json(
                value
                    .field(key)
                    .ok_or_else(|| json::JsonError::missing_field(key))?,
            )
        }
        Ok(FleetConfig {
            days: field(value, "days")?,
            seed: field(value, "seed")?,
            drives: model_map(value, "drives")?,
            failure_scale: field(value, "failure_scale")?,
            per_model_scale: model_map(value, "per_model_scale")?,
            max_initial_age_days: field(value, "max_initial_age_days")?,
            arrival_fraction: field(value, "arrival_fraction")?,
        })
    }
}

/// Builder for [`FleetConfig`].
#[derive(Debug, Clone)]
pub struct FleetConfigBuilder {
    days: u32,
    seed: u64,
    drives: BTreeMap<DriveModel, u32>,
    failure_scale: f64,
    per_model_scale: BTreeMap<DriveModel, f64>,
    max_initial_age_days: u32,
    arrival_fraction: f64,
}

impl Default for FleetConfigBuilder {
    fn default() -> Self {
        FleetConfigBuilder {
            days: DEFAULT_DAYS,
            seed: 42,
            drives: BTreeMap::new(),
            failure_scale: 4.0,
            per_model_scale: BTreeMap::new(),
            max_initial_age_days: 540,
            arrival_fraction: 0.25,
        }
    }
}

impl FleetConfigBuilder {
    /// Set the dataset window length in days (default 730).
    pub fn days(mut self, days: u32) -> Self {
        self.days = days;
        self
    }

    /// Set the master seed (default 42).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the number of drives for one model (replaces any earlier value).
    pub fn drives(mut self, model: DriveModel, count: u32) -> Self {
        self.drives.insert(model, count);
        self
    }

    /// Set the global failure-probability multiplier (default 4.0 — scaled
    /// up so small fleets yield statistically useful failure counts; see
    /// DESIGN.md §2).
    pub fn failure_scale(mut self, scale: f64) -> Self {
        self.failure_scale = scale;
        self
    }

    /// Set an additional failure multiplier for one model.
    pub fn per_model_scale(mut self, model: DriveModel, scale: f64) -> Self {
        self.per_model_scale.insert(model, scale);
        self
    }

    /// Set the maximum pre-window in-service age in days (default 540).
    pub fn max_initial_age_days(mut self, days: u32) -> Self {
        self.max_initial_age_days = days;
        self
    }

    /// Set the fraction of drives deployed mid-window (default 0.25).
    pub fn arrival_fraction(mut self, fraction: f64) -> Self {
        self.arrival_fraction = fraction;
        self
    }

    /// Validate and build the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::InvalidConfig`] when the window is shorter
    /// than 120 days (too short to label a 30-day horizon), no drives are
    /// configured, a scale is non-positive, or `arrival_fraction` is outside
    /// `[0, 1]`.
    pub fn build(self) -> Result<FleetConfig, DatasetError> {
        if self.days < 120 {
            return Err(DatasetError::InvalidConfig {
                message: format!("window of {} days is too short (minimum 120)", self.days),
            });
        }
        if self.drives.values().all(|&n| n == 0) {
            return Err(DatasetError::InvalidConfig {
                message: "no drives configured".to_string(),
            });
        }
        if self.failure_scale <= 0.0 || self.per_model_scale.values().any(|&s| s <= 0.0) {
            return Err(DatasetError::InvalidConfig {
                message: "failure scales must be positive".to_string(),
            });
        }
        if !(0.0..=1.0).contains(&self.arrival_fraction) {
            return Err(DatasetError::InvalidConfig {
                message: "arrival_fraction must be in [0, 1]".to_string(),
            });
        }
        Ok(FleetConfig {
            days: self.days,
            seed: self.seed,
            drives: self.drives,
            failure_scale: self.failure_scale,
            per_model_scale: self.per_model_scale,
            max_initial_age_days: self.max_initial_age_days,
            arrival_fraction: self.arrival_fraction,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults() {
        let c = FleetConfig::builder()
            .drives(DriveModel::Ma1, 10)
            .build()
            .unwrap();
        assert_eq!(c.days(), DEFAULT_DAYS);
        assert_eq!(c.total_drives(), 10);
        assert_eq!(c.effective_failure_scale(DriveModel::Ma1), 4.0);
    }

    #[test]
    fn balanced_preset() {
        let c = FleetConfig::balanced(50, 1).unwrap();
        assert_eq!(c.total_drives(), 300);
        for m in DriveModel::ALL {
            assert_eq!(c.drives_for(m), 50);
        }
        // MA2 gets the boost.
        assert!(
            c.effective_failure_scale(DriveModel::Ma2) > c.effective_failure_scale(DriveModel::Ma1)
        );
    }

    #[test]
    fn proportional_preset_matches_shares() {
        let c = FleetConfig::proportional(10_000, 1).unwrap();
        let mc1 = c.drives_for(DriveModel::Mc1) as f64 / c.total_drives() as f64;
        assert!((mc1 - 0.404).abs() < 0.01, "mc1 share = {mc1}");
        assert_eq!(c.failure_scale(), 1.0);
    }

    #[test]
    fn proportional_rejects_tiny_total() {
        assert!(FleetConfig::proportional(10, 1).is_err());
    }

    #[test]
    fn rejects_short_window() {
        assert!(FleetConfig::builder()
            .days(60)
            .drives(DriveModel::Ma1, 10)
            .build()
            .is_err());
    }

    #[test]
    fn rejects_empty_fleet() {
        assert!(FleetConfig::builder().build().is_err());
        assert!(FleetConfig::builder()
            .drives(DriveModel::Ma1, 0)
            .build()
            .is_err());
    }

    #[test]
    fn rejects_bad_scales() {
        assert!(FleetConfig::builder()
            .drives(DriveModel::Ma1, 1)
            .failure_scale(0.0)
            .build()
            .is_err());
        assert!(FleetConfig::builder()
            .drives(DriveModel::Ma1, 1)
            .per_model_scale(DriveModel::Ma1, -1.0)
            .build()
            .is_err());
    }

    #[test]
    fn rejects_bad_arrival_fraction() {
        assert!(FleetConfig::builder()
            .drives(DriveModel::Ma1, 1)
            .arrival_fraction(1.5)
            .build()
            .is_err());
    }

    #[test]
    fn models_iterates_configured_only() {
        let c = FleetConfig::builder()
            .drives(DriveModel::Ma1, 5)
            .drives(DriveModel::Mc1, 7)
            .build()
            .unwrap();
        let models: Vec<DriveModel> = c.models().collect();
        assert_eq!(models, vec![DriveModel::Ma1, DriveModel::Mc1]);
    }

    #[test]
    fn json_roundtrip() {
        let c = FleetConfig::balanced(10, 3).unwrap();
        let text = json::to_string(&c);
        let back: FleetConfig = json::from_str(&text).unwrap();
        assert_eq!(c, back);
    }

    #[test]
    fn json_rejects_unknown_model_key() {
        let c = FleetConfig::balanced(10, 3).unwrap();
        let text = json::to_string(&c).replace("MA1", "ZZ9");
        assert!(json::from_str::<FleetConfig>(&text).is_err());
    }
}
