//! Fleet record types: drives, daily observations, and failures.

use crate::attr::{FeatureId, ValueKind};
use crate::mechanism::FailureMechanism;
use crate::model::DriveModel;
use std::fmt;

/// Unique drive identifier within a fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DriveId(pub u32);

impl fmt::Display for DriveId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "drive-{:06}", self.0)
    }
}

/// The recorded failure of a drive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailureRecord {
    /// Dataset day of the failure (the drive's last observed day).
    pub day: u32,
    /// The underlying mechanism (ground truth — not visible to predictors).
    pub mechanism: FailureMechanism,
}

/// Full SMART history of one drive.
///
/// Daily values are stored flat (day-major, `[attr][raw, normalized]` per
/// day) to keep a multi-hundred-drive fleet within a few hundred megabytes.
#[derive(Debug, Clone, PartialEq)]
pub struct DriveRecord {
    /// Drive identifier.
    pub id: DriveId,
    /// Drive model.
    pub model: DriveModel,
    /// First observed dataset day.
    pub deploy_day: u32,
    /// Days in service before the dataset window opened.
    pub initial_age_days: u32,
    /// The failure, if the drive failed inside the window.
    pub failure: Option<FailureRecord>,
    values: Vec<f32>,
    n_days: u32,
}

impl DriveRecord {
    /// Assemble a record from flat day-major values.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != n_days * 2 * model.attributes().len()` —
    /// this is a constructor for the simulator, which controls the layout.
    pub fn from_flat_values(
        id: DriveId,
        model: DriveModel,
        deploy_day: u32,
        initial_age_days: u32,
        failure: Option<FailureRecord>,
        values: Vec<f32>,
        n_days: u32,
    ) -> Self {
        let stride = 2 * model.attributes().len();
        assert_eq!(
            values.len(),
            n_days as usize * stride,
            "flat value buffer does not match {n_days} days × stride {stride}"
        );
        DriveRecord {
            id,
            model,
            deploy_day,
            initial_age_days,
            failure,
            values,
            n_days,
        }
    }

    /// Number of observed days.
    pub fn n_days(&self) -> u32 {
        self.n_days
    }

    /// Last observed dataset day.
    pub fn last_day(&self) -> u32 {
        self.deploy_day + self.n_days.saturating_sub(1)
    }

    /// Whether the drive failed within the window.
    pub fn is_failed(&self) -> bool {
        self.failure.is_some()
    }

    /// Whether the drive is observed on dataset day `day`.
    pub fn observed_on(&self, day: u32) -> bool {
        day >= self.deploy_day && day <= self.last_day()
    }

    /// The value of `feature` on dataset day `day`, if observed and the
    /// model reports the attribute.
    pub fn value_on(&self, day: u32, feature: FeatureId) -> Option<f64> {
        if !self.observed_on(day) {
            return None;
        }
        let attr_idx = self.model.attribute_index(feature.attr)?;
        let stride = 2 * self.model.attributes().len();
        let day_offset = (day - self.deploy_day) as usize;
        let kind_offset = match feature.kind {
            ValueKind::Raw => 0,
            ValueKind::Normalized => 1,
        };
        Some(self.values[day_offset * stride + 2 * attr_idx + kind_offset] as f64)
    }

    /// The full observed series of `feature` (one value per observed day),
    /// or `None` if the model does not report the attribute.
    pub fn series(&self, feature: FeatureId) -> Option<Vec<f64>> {
        let attr_idx = self.model.attribute_index(feature.attr)?;
        let stride = 2 * self.model.attributes().len();
        let kind_offset = match feature.kind {
            ValueKind::Raw => 0,
            ValueKind::Normalized => 1,
        };
        Some(
            (0..self.n_days as usize)
                .map(|d| self.values[d * stride + 2 * attr_idx + kind_offset] as f64)
                .collect(),
        )
    }

    /// The trailing slice (up to `width` days, ending at dataset day `day`
    /// inclusive) of `feature`'s series — the window the pipeline's feature
    /// generation consumes.
    pub fn trailing_series(&self, day: u32, width: u32, feature: FeatureId) -> Option<Vec<f64>> {
        if !self.observed_on(day) || width == 0 {
            return None;
        }
        let attr_idx = self.model.attribute_index(feature.attr)?;
        let stride = 2 * self.model.attributes().len();
        let kind_offset = match feature.kind {
            ValueKind::Raw => 0,
            ValueKind::Normalized => 1,
        };
        let end = (day - self.deploy_day) as usize;
        let start = (end + 1).saturating_sub(width as usize);
        Some(
            (start..=end)
                .map(|d| self.values[d * stride + 2 * attr_idx + kind_offset] as f64)
                .collect(),
        )
    }

    /// `MWI_N` on the drive's last observed day — the wear-out coordinate of
    /// the survival analysis.
    pub fn final_mwi_n(&self) -> Option<f64> {
        use crate::attr::SmartAttribute;
        self.value_on(self.last_day(), FeatureId::normalized(SmartAttribute::Mwi))
    }

    /// Condense to a [`DriveSummary`].
    pub fn summary(&self) -> DriveSummary {
        DriveSummary {
            id: self.id,
            model: self.model,
            deploy_day: self.deploy_day,
            initial_age_days: self.initial_age_days,
            observed_days: self.n_days,
            final_mwi_n: self.final_mwi_n().unwrap_or(100.0),
            failure: self.failure,
        }
    }
}

/// Lifecycle summary of a drive — all the census statistics (Table II,
/// Fig. 1) need, at a fraction of the memory of a full record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriveSummary {
    /// Drive identifier.
    pub id: DriveId,
    /// Drive model.
    pub model: DriveModel,
    /// First observed dataset day.
    pub deploy_day: u32,
    /// Days in service before the window opened.
    pub initial_age_days: u32,
    /// Number of observed days.
    pub observed_days: u32,
    /// `MWI_N` on the last observed day.
    pub final_mwi_n: f64,
    /// The failure, if any.
    pub failure: Option<FailureRecord>,
}

impl DriveSummary {
    /// Whether the drive failed within the window.
    pub fn is_failed(&self) -> bool {
        self.failure.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::SmartAttribute;

    fn tiny_record() -> DriveRecord {
        // MB2 reports 15 attributes; 2 days of data.
        let model = DriveModel::Mb2;
        let stride = 2 * model.attributes().len();
        let mut values = vec![0.0f32; 2 * stride];
        // Day 0, attribute 0 (RSC): raw 5, norm 95.
        values[0] = 5.0;
        values[1] = 95.0;
        // Day 1, attribute 0: raw 6, norm 94.
        values[stride] = 6.0;
        values[stride + 1] = 94.0;
        DriveRecord::from_flat_values(DriveId(7), model, 10, 100, None, values, 2)
    }

    #[test]
    fn value_access() {
        let r = tiny_record();
        let rsc_r = FeatureId::raw(SmartAttribute::Rsc);
        let rsc_n = FeatureId::normalized(SmartAttribute::Rsc);
        assert_eq!(r.value_on(10, rsc_r), Some(5.0));
        assert_eq!(r.value_on(11, rsc_r), Some(6.0));
        assert_eq!(r.value_on(11, rsc_n), Some(94.0));
        assert_eq!(r.value_on(9, rsc_r), None);
        assert_eq!(r.value_on(12, rsc_r), None);
    }

    #[test]
    fn unreported_attribute_is_none() {
        let r = tiny_record();
        // MB2 does not report OCE.
        assert_eq!(r.value_on(10, FeatureId::raw(SmartAttribute::Oce)), None);
        assert_eq!(r.series(FeatureId::raw(SmartAttribute::Oce)), None);
    }

    #[test]
    fn series_spans_observed_days() {
        let r = tiny_record();
        let s = r.series(FeatureId::raw(SmartAttribute::Rsc)).unwrap();
        assert_eq!(s, vec![5.0, 6.0]);
    }

    #[test]
    fn trailing_series_truncates() {
        let r = tiny_record();
        let s = r
            .trailing_series(11, 7, FeatureId::raw(SmartAttribute::Rsc))
            .unwrap();
        assert_eq!(s, vec![5.0, 6.0]);
        let s = r
            .trailing_series(11, 1, FeatureId::raw(SmartAttribute::Rsc))
            .unwrap();
        assert_eq!(s, vec![6.0]);
        assert!(r
            .trailing_series(9, 3, FeatureId::raw(SmartAttribute::Rsc))
            .is_none());
    }

    #[test]
    fn last_day_and_observed() {
        let r = tiny_record();
        assert_eq!(r.last_day(), 11);
        assert!(r.observed_on(10) && r.observed_on(11));
        assert!(!r.observed_on(12));
        assert!(!r.is_failed());
    }

    #[test]
    fn summary_roundtrip() {
        let r = tiny_record();
        let s = r.summary();
        assert_eq!(s.id, r.id);
        assert_eq!(s.observed_days, 2);
        assert!(!s.is_failed());
    }

    #[test]
    #[should_panic(expected = "flat value buffer")]
    fn wrong_buffer_size_panics() {
        DriveRecord::from_flat_values(DriveId(0), DriveModel::Mb2, 0, 0, None, vec![0.0; 3], 2);
    }

    #[test]
    fn drive_id_display() {
        assert_eq!(DriveId(42).to_string(), "drive-000042");
    }
}
