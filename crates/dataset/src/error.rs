//! Error type for dataset generation and I/O.

use std::fmt;

/// Errors produced by the dataset crate.
#[derive(Debug)]
#[non_exhaustive]
pub enum DatasetError {
    /// A fleet configuration was invalid.
    InvalidConfig {
        /// Human-readable description of the violation.
        message: String,
    },
    /// A CSV record could not be parsed.
    ParseCsv {
        /// 1-based line number of the offending record.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
    /// Underlying I/O failure during import/export.
    Io(std::io::Error),
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::InvalidConfig { message } => {
                write!(f, "invalid fleet configuration: {message}")
            }
            DatasetError::ParseCsv { line, message } => {
                write!(f, "csv parse error at line {line}: {message}")
            }
            DatasetError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for DatasetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DatasetError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for DatasetError {
    fn from(e: std::io::Error) -> Self {
        DatasetError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = DatasetError::InvalidConfig {
            message: "no drives".into(),
        };
        assert!(e.to_string().contains("no drives"));
        let e = DatasetError::ParseCsv {
            line: 7,
            message: "bad field".into(),
        };
        assert!(e.to_string().contains("line 7"));
        let e = DatasetError::from(std::io::Error::other("boom"));
        assert!(e.to_string().contains("boom"));
    }

    #[test]
    fn io_source_is_chained() {
        use std::error::Error;
        let e = DatasetError::from(std::io::Error::other("x"));
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DatasetError>();
    }
}
