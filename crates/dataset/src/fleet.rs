//! Fleet and census generation.

use crate::config::FleetConfig;
use crate::error::DatasetError;
use crate::gen::{plan_drive, simulate_drive};
use crate::model::DriveModel;
use crate::records::{DriveId, DriveRecord, DriveSummary, FailureRecord};
use rng::rngs::StdRng;
use rng::SeedableRng;

/// A fully simulated fleet: daily SMART logs for every drive.
///
/// # Example
///
/// ```
/// use smart_dataset::{Fleet, FleetConfig, DriveModel};
///
/// # fn main() -> Result<(), smart_dataset::DatasetError> {
/// let config = FleetConfig::builder()
///     .days(200)
///     .drives(DriveModel::Mc1, 20)
///     .seed(1)
///     .build()?;
/// let fleet = Fleet::generate(&config);
/// assert_eq!(fleet.drives().len(), 20);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Fleet {
    config: FleetConfig,
    drives: Vec<DriveRecord>,
}

impl Fleet {
    /// Simulate a full fleet under `config`. Deterministic for a fixed
    /// configuration (including its seed).
    pub fn generate(config: &FleetConfig) -> Fleet {
        let mut drives = Vec::with_capacity(config.total_drives() as usize);
        let mut global_index = 0u32;
        for model in DriveModel::ALL {
            for _ in 0..config.drives_for(model) {
                let mut rng = drive_rng(config.seed(), global_index);
                let plan = plan_drive(model, config, &mut rng);
                let record = simulate_drive(DriveId(global_index), &plan, config.days(), &mut rng);
                drives.push(record);
                global_index += 1;
            }
        }
        Fleet {
            config: config.clone(),
            drives,
        }
    }

    /// Assemble a fleet from existing records (used by CSV import).
    pub fn from_records(config: FleetConfig, drives: Vec<DriveRecord>) -> Fleet {
        Fleet { config, drives }
    }

    /// The generating configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// All drive records.
    pub fn drives(&self) -> &[DriveRecord] {
        &self.drives
    }

    /// The drives of one model.
    pub fn drives_of_model(&self, model: DriveModel) -> impl Iterator<Item = &DriveRecord> {
        self.drives.iter().filter(move |d| d.model == model)
    }

    /// Number of failed drives across the fleet.
    pub fn n_failures(&self) -> usize {
        self.drives.iter().filter(|d| d.is_failed()).count()
    }

    /// Lifecycle summaries of every drive.
    pub fn summaries(&self) -> Vec<DriveSummary> {
        self.drives.iter().map(DriveRecord::summary).collect()
    }
}

/// A lifecycle-only census: who was deployed when, who failed, and final
/// wear-out — everything the fleet-level statistics (Table II, Fig. 1) need,
/// at a tiny fraction of the memory of a full [`Fleet`].
///
/// The census uses the same per-drive planning (and per-drive RNG streams)
/// as [`Fleet::generate`], so the two views of one configuration agree on
/// which drives fail, when, and why. Final `MWI_N` is the deterministic wear
/// projection rather than the noisy simulated value.
#[derive(Debug, Clone, PartialEq)]
pub struct Census {
    config: FleetConfig,
    summaries: Vec<DriveSummary>,
}

impl Census {
    /// Plan a census under `config`.
    ///
    /// Planned, not measured: `final_mwi_n` is the deterministic wear
    /// projection of each drive's plan. For a census *measured* from the
    /// actual simulated telemetry — the paper's Fig. 1 view — use
    /// [`Census::measured`], which streams the full simulation in bounded
    /// memory (DESIGN.md §12).
    pub fn generate(config: &FleetConfig) -> Census {
        let mut summaries = Vec::with_capacity(config.total_drives() as usize);
        let mut global_index = 0u32;
        for model in DriveModel::ALL {
            for _ in 0..config.drives_for(model) {
                let mut rng = drive_rng(config.seed(), global_index);
                let plan = plan_drive(model, config, &mut rng);
                let last_day = plan.last_day(config.days());
                summaries.push(DriveSummary {
                    id: DriveId(global_index),
                    model,
                    deploy_day: plan.deploy_day,
                    initial_age_days: plan.initial_age_days,
                    observed_days: last_day - plan.deploy_day + 1,
                    final_mwi_n: plan.projected_mwi_n(last_day),
                    failure: plan.destiny.map(|d| FailureRecord {
                        day: d.failure_day,
                        mechanism: d.mechanism,
                    }),
                });
                global_index += 1;
            }
        }
        Census {
            config: config.clone(),
            summaries,
        }
    }

    /// A census *measured* from the fully simulated fleet, produced by the
    /// streaming generator: every drive is simulated day by day (in
    /// bounded memory, never holding the whole fleet) and summarised from
    /// its actual telemetry, so `final_mwi_n` is the noisy simulated value
    /// rather than [`Census::generate`]'s noise-free projection. Failure
    /// days, deployment and observation windows agree with both
    /// [`Fleet::generate`] and [`Census::generate`] drive for drive.
    ///
    /// # Errors
    ///
    /// Propagates scenario-validation errors from the streaming generator
    /// (a scenario-free `gen` cannot fail).
    pub fn measured(
        config: &FleetConfig,
        gen: &crate::gen::stream::GenConfig,
    ) -> Result<Census, DatasetError> {
        let mut summaries = Vec::with_capacity(config.total_drives() as usize);
        crate::gen::stream::stream_fleet_batches(config, gen, |batch| {
            summaries.extend(batch.drives.iter().map(DriveRecord::summary));
            Ok::<(), DatasetError>(())
        })?;
        Ok(Census {
            config: config.clone(),
            summaries,
        })
    }

    /// Assemble a census from existing summaries (used by streamed
    /// populations that fold batches into summaries as they pass by).
    pub fn from_summaries(config: FleetConfig, summaries: Vec<DriveSummary>) -> Census {
        Census { config, summaries }
    }

    /// The generating configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// All drive summaries.
    pub fn summaries(&self) -> &[DriveSummary] {
        &self.summaries
    }

    /// The summaries of one model.
    pub fn summaries_of_model(&self, model: DriveModel) -> impl Iterator<Item = &DriveSummary> {
        self.summaries.iter().filter(move |d| d.model == model)
    }

    /// Number of failed drives.
    pub fn n_failures(&self) -> usize {
        self.summaries.iter().filter(|d| d.is_failed()).count()
    }
}

/// Derive the per-drive RNG from the master seed and the drive's global
/// index (splitmix64 mixing), so census and full simulation see identical
/// plan randomness. Because each drive's stream depends only on
/// `(seed, global_index)`, any contiguous drive range can be generated
/// independently of the rest of the fleet — the seam the streaming
/// generator ([`crate::gen::stream`]) is built on.
pub(crate) fn drive_rng(seed: u64, global_index: u32) -> StdRng {
    let mut z = seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(global_index as u64 + 1));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    StdRng::seed_from_u64(z ^ (z >> 31))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> FleetConfig {
        FleetConfig::builder()
            .days(365)
            .seed(77)
            .drives(DriveModel::Ma1, 30)
            .drives(DriveModel::Mc1, 30)
            .build()
            .unwrap()
    }

    #[test]
    fn generate_is_deterministic() {
        let config = small_config();
        let a = Fleet::generate(&config);
        let b = Fleet::generate(&config);
        assert_eq!(a, b);
    }

    #[test]
    fn drive_counts_match_config() {
        let fleet = Fleet::generate(&small_config());
        assert_eq!(fleet.drives().len(), 60);
        assert_eq!(fleet.drives_of_model(DriveModel::Ma1).count(), 30);
        assert_eq!(fleet.drives_of_model(DriveModel::Mc1).count(), 30);
        assert_eq!(fleet.drives_of_model(DriveModel::Mb2).count(), 0);
    }

    #[test]
    fn census_agrees_with_fleet_on_failures() {
        let config = small_config();
        let fleet = Fleet::generate(&config);
        let census = Census::generate(&config);
        assert_eq!(fleet.drives().len(), census.summaries().len());
        for (rec, sum) in fleet.drives().iter().zip(census.summaries()) {
            assert_eq!(rec.id, sum.id);
            assert_eq!(rec.model, sum.model);
            assert_eq!(rec.deploy_day, sum.deploy_day);
            assert_eq!(rec.failure, sum.failure);
            assert_eq!(rec.n_days(), sum.observed_days);
            // Census MWI is the noise-free projection; must be close to the
            // simulated value. Wear-out casualties consume wear 3× faster
            // after onset (which the projection ignores), so for them the
            // simulated value may sit well below — but never above — the
            // projection.
            let simulated = rec.final_mwi_n().unwrap();
            let wear_out = rec
                .failure
                .is_some_and(|f| f.mechanism == crate::mechanism::FailureMechanism::WearOut);
            let diverged = if wear_out {
                simulated - sum.final_mwi_n >= 8.0
            } else {
                (simulated - sum.final_mwi_n).abs() >= 8.0
            };
            assert!(
                !diverged,
                "drive {}: simulated {simulated}, projected {}",
                rec.id, sum.final_mwi_n
            );
        }
    }

    #[test]
    fn seeds_change_outcomes() {
        let a = Fleet::generate(&small_config());
        let other = FleetConfig::builder()
            .days(365)
            .seed(78)
            .drives(DriveModel::Ma1, 30)
            .drives(DriveModel::Mc1, 30)
            .build()
            .unwrap();
        let b = Fleet::generate(&other);
        assert_ne!(a, b);
    }

    #[test]
    fn some_failures_occur_at_default_scale() {
        let config = FleetConfig::balanced(60, 5).unwrap();
        let census = Census::generate(&config);
        assert!(
            census.n_failures() > 10,
            "failures = {}",
            census.n_failures()
        );
        // And not everything fails.
        assert!(census.n_failures() < census.summaries().len() / 2);
    }

    #[test]
    fn drive_ids_are_unique_and_dense() {
        let fleet = Fleet::generate(&small_config());
        for (i, d) in fleet.drives().iter().enumerate() {
            assert_eq!(d.id, DriveId(i as u32));
        }
    }
}
