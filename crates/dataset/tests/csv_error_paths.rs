//! Table-driven CSV error-path parity: every malformed input must produce
//! the *same* `ParseCsv` line number and message from the single-threaded
//! reader and from the sharded reader at several worker counts — including
//! errors that land deep in a later shard, where the absolute line number
//! proves the shards carry their file offsets correctly.

use smart_dataset::csv::{export_smart_csv, import_smart_csv};
use smart_dataset::{
    import_smart_csv_sharded, import_smart_csv_sharded_with_stats, tickets_from_summaries,
    DatasetError, DriveModel, Fleet, FleetConfig, IngestConfig, IngestTolerance, SkipCounts,
    TroubleTicket,
};

struct Fixture {
    csv: String,
    tickets: Vec<TroubleTicket>,
    config: FleetConfig,
}

/// A two-model fleet exported to CSV, the substrate every case corrupts.
fn fixture() -> Fixture {
    let config = FleetConfig::builder()
        .days(120)
        .seed(23)
        .drives(DriveModel::Ma1, 4)
        .drives(DriveModel::Mc1, 3)
        .failure_scale(8.0)
        .build()
        .expect("valid config");
    let fleet = Fleet::generate(&config);
    let tickets = tickets_from_summaries(&fleet.summaries());
    let mut buf = Vec::new();
    export_smart_csv(&fleet, &mut buf).expect("export");
    Fixture {
        csv: String::from_utf8(buf).expect("utf8"),
        tickets,
        config,
    }
}

/// Replace 1-based file line `line_no` with `with` (no trailing newline).
fn corrupt_line(csv: &str, line_no: usize, with: &str) -> String {
    let mut lines: Vec<&str> = csv.lines().collect();
    assert!(line_no <= lines.len(), "fixture has {} lines", lines.len());
    lines[line_no - 1] = with;
    let mut out = lines.join("\n");
    out.push('\n');
    out
}

fn parse_csv_error(result: Result<Fleet, DatasetError>, context: &str) -> (usize, String) {
    match result {
        Err(DatasetError::ParseCsv { line, message }) => (line, message),
        other => panic!("{context}: expected ParseCsv, got {other:?}"),
    }
}

/// Run one corrupted input through both readers and assert identical
/// diagnostics. Small shards force the error line into a late shard.
fn assert_same_error(fix: &Fixture, input: &str, case: &str) -> (usize, String) {
    let single = parse_csv_error(
        import_smart_csv(input.as_bytes(), &fix.tickets, fix.config.clone()),
        case,
    );
    for workers in [1, 4] {
        for shard_rows in [1, 37, 1_000_000] {
            let ingest = IngestConfig {
                shard_rows,
                workers,
                ..IngestConfig::default()
            };
            let sharded = parse_csv_error(
                import_smart_csv_sharded(
                    input.as_bytes(),
                    &fix.tickets,
                    fix.config.clone(),
                    &ingest,
                ),
                case,
            );
            assert_eq!(
                single, sharded,
                "{case}: single vs sharded (workers={workers}, shard_rows={shard_rows})"
            );
        }
    }
    single
}

/// The largest 1-based line number whose row continues the previous row's
/// drive run — corruptions there hit mid-run checks (day contiguity, model
/// change), not the new-run path.
fn deepest_mid_run_line(csv: &str) -> usize {
    let ids: Vec<&str> = csv
        .lines()
        .map(|l| l.split(',').next().unwrap_or(""))
        .collect();
    (2..ids.len())
        .rev()
        .find(|&i| ids[i] == ids[i - 1])
        .expect("fixture has a multi-day drive")
        + 1
}

/// Index into the comma-split fields of the first attribute column the row
/// actually reports (non-empty), i.e. the raw half of a present pair.
fn first_reported_attr_field(row: &str) -> usize {
    let fields: Vec<&str> = row.split(',').collect();
    (3..fields.len())
        .step_by(2)
        .find(|&j| !fields[j].is_empty())
        .expect("every model reports at least one attribute")
}

#[test]
fn corrupted_rows_report_identical_diagnostics_from_both_readers() {
    let fix = fixture();
    // A mid-run line far into the file: with shard_rows=37 it falls in a
    // late shard, so matching the single-threaded line number proves the
    // absolute-offset bookkeeping.
    let deep = deepest_mid_run_line(&fix.csv);
    let deep_row = fix.csv.lines().nth(deep - 1).unwrap();
    let deep_id = deep_row.split(',').next().unwrap();
    let deep_model = deep_row.split(',').nth(1).unwrap();
    let other_model = if deep_model == "MC1" { "MA1" } else { "MC1" };
    let attr_at = first_reported_attr_field(deep_row);

    // (case name, 1-based line to corrupt, replacement, expected message
    // fragment). The full messages are asserted equal across readers; the
    // fragment pins which check fired.
    let cases: Vec<(&str, usize, String, String)> = vec![
        (
            "truncated row",
            5,
            "0,MA1,3".to_string(),
            "expected 47 fields, got 3".to_string(),
        ),
        (
            "bad drive_id",
            4,
            {
                let row = fix.csv.lines().nth(3).unwrap();
                format!("x{}", &row[1..])
            },
            "bad drive_id".to_string(),
        ),
        (
            "unknown model",
            4,
            fix.csv.lines().nth(3).unwrap().replacen("MA1", "ZZ9", 1),
            "unknown model \"ZZ9\"".to_string(),
        ),
        (
            "bad day",
            deep,
            {
                let mut fields: Vec<&str> = deep_row.split(',').collect();
                fields[2] = "soon";
                fields.join(",")
            },
            "bad day \"soon\"".to_string(),
        ),
        (
            "non-contiguous day",
            deep,
            {
                let mut fields: Vec<String> = deep_row.split(',').map(str::to_string).collect();
                let day: u32 = fields[2].parse().unwrap();
                fields[2] = (day + 1).to_string();
                fields.join(",")
            },
            "expected day".to_string(),
        ),
        (
            "model change mid-file",
            deep,
            deep_row.replacen(deep_model, other_model, 1),
            format!("drive {deep_id} changes model mid-file"),
        ),
        (
            "attribute presence mismatch",
            deep,
            {
                // Blank one value of a reported attribute pair: presence no
                // longer matches the model's attribute set.
                let mut fields: Vec<&str> = deep_row.split(',').collect();
                fields[attr_at] = "";
                fields.join(",")
            },
            "presence does not match model".to_string(),
        ),
        (
            "bad raw attribute value",
            deep,
            {
                let mut fields: Vec<&str> = deep_row.split(',').collect();
                fields[attr_at] = "many";
                fields.join(",")
            },
            "_R value \"many\"".to_string(),
        ),
        (
            "bad normalised attribute value",
            deep,
            {
                let mut fields: Vec<&str> = deep_row.split(',').collect();
                fields[attr_at + 1] = "many";
                fields.join(",")
            },
            "_N value \"many\"".to_string(),
        ),
    ];

    for (case, line_no, replacement, fragment) in &cases {
        let input = corrupt_line(&fix.csv, *line_no, replacement);
        let (line, message) = assert_same_error(&fix, &input, case);
        assert_eq!(line, *line_no, "{case}: error line");
        assert!(
            message.contains(fragment.as_str()),
            "{case}: message {message:?} lacks {fragment:?}"
        );
    }
}

#[test]
fn header_and_empty_file_errors_match() {
    let fix = fixture();
    for (case, input) in [
        ("empty file", String::new()),
        ("bad header", corrupt_line(&fix.csv, 1, "drive_id,model")),
    ] {
        let (line, message) = assert_same_error(&fix, &input, case);
        assert_eq!(line, 1, "{case}");
        assert!(!message.is_empty(), "{case}");
    }
}

/// Insert `line` after 1-based file line `after` (no trailing newline on
/// `line`).
fn insert_after(csv: &str, after: usize, line: &str) -> String {
    let mut lines: Vec<&str> = csv.lines().collect();
    assert!(after <= lines.len(), "fixture has {} lines", lines.len());
    lines.insert(after, line);
    let mut out = lines.join("\n");
    out.push('\n');
    out
}

/// 1-based line number of the first row of the run that line `line_no`
/// belongs to.
fn run_first_line(csv: &str, line_no: usize) -> usize {
    let ids: Vec<&str> = csv
        .lines()
        .map(|l| l.split(',').next().unwrap_or(""))
        .collect();
    let mut i = line_no - 1; // 0-based
    while i > 1 && ids[i - 1] == ids[i] {
        i -= 1;
    }
    i + 1
}

#[test]
fn duplicate_and_out_of_order_rows_error_strict_and_skip_tolerant() {
    let fix = fixture();
    let clean = import_smart_csv(fix.csv.as_bytes(), &fix.tickets, fix.config.clone())
        .expect("clean import");
    let deep = deepest_mid_run_line(&fix.csv);
    let deep_row = fix.csv.lines().nth(deep - 1).unwrap().to_string();
    let first = run_first_line(&fix.csv, deep);
    let first_row = fix.csv.lines().nth(first - 1).unwrap().to_string();
    assert!(deep > first + 1, "need a stale row, not a duplicate");

    // (case, dirty input, expected tolerant counts). The strict error must
    // land on the inserted line with a day-contiguity message.
    let cases = [
        (
            "duplicate row",
            insert_after(&fix.csv, deep, &deep_row),
            SkipCounts {
                duplicate_rows: 1,
                ..SkipCounts::default()
            },
        ),
        (
            "out-of-order row",
            insert_after(&fix.csv, deep, &first_row),
            SkipCounts {
                out_of_order_rows: 1,
                ..SkipCounts::default()
            },
        ),
    ];

    for (case, input, expected) in &cases {
        // Strict: both readers report the inserted line, same message.
        let (line, message) = assert_same_error(&fix, input, case);
        assert_eq!(line, deep + 1, "{case}: error line");
        assert!(message.contains("expected day"), "{case}: {message:?}");

        // Tolerant: identical skip counts at every worker/shard combo, and
        // dropping the row reconstructs the clean fleet bit-for-bit.
        for workers in [1, 4] {
            for shard_rows in [1, 37, 1_000_000] {
                let ingest = IngestConfig {
                    shard_rows,
                    workers,
                    tolerance: IngestTolerance::Tolerant,
                    ..IngestConfig::default()
                };
                let (fleet, stats) = import_smart_csv_sharded_with_stats(
                    input.as_bytes(),
                    &fix.tickets,
                    fix.config.clone(),
                    &ingest,
                )
                .expect(case);
                assert_eq!(
                    stats.skipped, *expected,
                    "{case}: workers={workers} shard_rows={shard_rows}"
                );
                assert_eq!(fleet.drives(), clean.drives(), "{case}");
            }
        }
    }
}

#[test]
fn first_error_in_file_order_wins_across_shards() {
    // Two corrupt rows in different shards: both readers must report the
    // earlier one, whichever worker finishes first.
    let fix = fixture();
    let n_lines = fix.csv.lines().count();
    let early = 6;
    let late = n_lines - 3;
    let input = corrupt_line(&corrupt_line(&fix.csv, late, "9,MC1"), early, "0,MA1");
    let (line, message) = assert_same_error(&fix, &input, "two corrupt rows");
    assert_eq!(line, early);
    assert!(message.contains("expected 47 fields, got 2"), "{message:?}");
}
