//! Seeded property tests for the streaming batch emitter (DESIGN.md §12):
//! chunk-boundary invariance — any contiguous partition of the drive ids,
//! generated in any order, concatenates to the materialized fleet — and
//! planned-census agreement with the measured (streamed) population,
//! generalizing the fixed-seed `census_agrees_with_fleet_on_failures`.

use smart_dataset::gen::stream::{generate_drive_range, GenConfig};
use smart_dataset::{Census, DriveModel, DriveRecord, FailureMechanism, Fleet, FleetConfig};

fn random_config(g: &mut rng::prop::Gen) -> FleetConfig {
    let mut builder = FleetConfig::builder()
        .days(g.usize_in(120, 280) as u32)
        .seed(g.u64_in(0, u64::MAX))
        .failure_scale(8.0);
    // 1–3 small models keeps a case well under a second.
    let models = [DriveModel::Ma1, DriveModel::Mc1, DriveModel::Mb2];
    for &model in models.iter().take(g.usize_in(1, models.len())) {
        builder = builder.drives(model, g.usize_in(1, 12) as u32);
    }
    builder.build().expect("valid config")
}

#[test]
fn prop_any_partition_in_any_order_concatenates_to_the_fleet() {
    rng::prop_check!(|g| {
        let config = random_config(g);
        let total = config.total_drives();
        // Random cut points partition 0..total into contiguous ranges.
        let mut cuts: Vec<u32> = (0..g.usize_in(0, 6))
            .map(|_| g.u64_in(0, u64::from(total)) as u32)
            .collect();
        cuts.extend([0, total]);
        cuts.sort_unstable();
        cuts.dedup();
        let bounds: Vec<(u32, u32)> = cuts.windows(2).map(|w| (w[0], w[1])).collect();
        // Generate the ranges in a random order: chunk independence means
        // a range's content cannot depend on what was generated before it.
        let mut parts: Vec<(u32, Vec<DriveRecord>)> = Vec::with_capacity(bounds.len());
        for &i in &g.permutation(bounds.len()) {
            let (start, end) = bounds[i];
            let chunk = generate_drive_range(&config, start, end - start).expect("in-range chunk");
            parts.push((start, chunk));
        }
        parts.sort_by_key(|(start, _)| *start);
        let concatenated: Vec<DriveRecord> =
            parts.into_iter().flat_map(|(_, chunk)| chunk).collect();
        let reference = Fleet::generate(&config);
        assert_eq!(concatenated.as_slice(), reference.drives());
    });
}

#[test]
fn prop_measured_census_agrees_with_planned_census_on_lifecycles() {
    rng::prop_check!(|g| {
        let config = random_config(g);
        let gen = GenConfig {
            chunk_drives: g.usize_in(1, 9),
            workers: g.usize_in(1, 4),
            max_queued_chunks: g.usize_in(1, 3),
            scenario: None,
        };
        let planned = Census::generate(&config);
        let measured = Census::measured(&config, &gen).expect("measured census");
        assert_eq!(planned.summaries().len(), measured.summaries().len());
        for (p, m) in planned.summaries().iter().zip(measured.summaries()) {
            assert_eq!(p.id, m.id);
            assert_eq!(p.model, m.model);
            assert_eq!(p.deploy_day, m.deploy_day);
            assert_eq!(p.initial_age_days, m.initial_age_days);
            assert_eq!(
                p.failure, m.failure,
                "drive {}: failure day/mechanism",
                m.id
            );
            assert_eq!(p.observed_days, m.observed_days);
            // The planned census projects wear noise-free; the measured one
            // reads the simulated value. Wear-out casualties consume wear
            // 3× faster after onset (which the projection ignores), so for
            // them the measured value may sit well below — but never
            // above — the projection.
            let wear_out = m
                .failure
                .is_some_and(|f| f.mechanism == FailureMechanism::WearOut);
            let diverged = if wear_out {
                m.final_mwi_n - p.final_mwi_n >= 8.0
            } else {
                (m.final_mwi_n - p.final_mwi_n).abs() >= 8.0
            };
            assert!(
                !diverged,
                "drive {}: measured {}, projected {}",
                m.id, m.final_mwi_n, p.final_mwi_n
            );
        }
    });
}
