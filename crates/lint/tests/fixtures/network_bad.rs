//! Fixture: socket use in library code.

use std::net::TcpListener;

pub fn serve() -> std::io::Result<()> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    drop(listener);
    Ok(())
}
