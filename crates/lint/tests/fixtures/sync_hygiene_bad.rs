//! Positive fixture: raw std::sync primitives outside crates/sync.
use std::sync::Mutex;
use std::sync::{Arc, Condvar};
use std::sync::atomic::{AtomicBool, Ordering};

pub fn f() {
    let _m = std::sync::Mutex::new(0u32);
    let (_tx, _rx) = std::sync::mpsc::channel::<u8>();
}
