//! Negative fixture: total_cmp everywhere; partial_cmp only in tests and
//! prose.

/// Sorting with `total_cmp` is the sanctioned ordering.
pub fn sort_scores(xs: &mut [f64]) {
    xs.sort_by(|a, b| a.total_cmp(b));
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_use_partial_cmp() {
        assert_eq!(1.0f64.partial_cmp(&2.0), Some(std::cmp::Ordering::Less));
    }
}
