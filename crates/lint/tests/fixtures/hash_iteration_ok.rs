//! Negative fixture: BTreeMap keeps iteration order deterministic.

use std::collections::BTreeMap;

pub fn count(names: &[&str]) -> BTreeMap<String, usize> {
    let mut out = BTreeMap::new();
    for n in names {
        *out.entry(n.to_string()).or_insert(0) += 1;
    }
    out
}
