//! Negative fixture: the shim import plus the std::sync leaves that have
//! no scheduling behaviour stay allowed.
use std::sync::Arc;
use std::sync::{LockResult, PoisonError};
use sync::{Condvar, Mutex};

pub fn f(m: &Mutex<u32>, cv: &Condvar) {
    let mut g = m.lock().unwrap_or_else(PoisonError::into_inner);
    while *g == 0 {
        g = cv.wait(g).unwrap_or_else(PoisonError::into_inner);
    }
    let _: LockResult<()> = Ok(());
    let _ = Arc::new(0u32);
}
