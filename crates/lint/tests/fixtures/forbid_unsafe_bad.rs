//! Positive fixture: a crate root with no unsafe-code forbid.

pub fn noop() {}
