//! Negative fixture: waits in predicate loops, the while-head
//! wait_timeout idiom, and wait_while (predicate carried by the call).
use sync::{Condvar, Mutex};

pub fn while_body(m: &Mutex<bool>, cv: &Condvar) {
    let mut g = m.lock().unwrap();
    while !*g {
        g = cv.wait(g).unwrap();
    }
    drop(g);
}

pub fn loop_body(m: &Mutex<u32>, cv: &Condvar) {
    let mut g = m.lock().unwrap();
    loop {
        if *g > 0 {
            break;
        }
        g = cv.wait(g).unwrap();
    }
    drop(g);
}

pub fn while_head(flag: &sync::shutdown::StopFlag) {
    while !flag.wait_timeout(std::time::Duration::from_millis(10)) {
        let _tick = ();
    }
}

pub fn predicate_carried(m: &Mutex<bool>, cv: &Condvar) {
    let g = m.lock().unwrap();
    let _g = cv.wait_while(g, |stopped| !*stopped);
}
