//! Suppression fixture: a reasoned allow absorbs the diagnostic.

pub fn first(xs: &[f64]) -> f64 {
    // lint:allow(panic-free) fixture invariant: callers never pass empty
    *xs.first().unwrap()
}
