//! Positive fixture: panicking calls in library code.

pub fn first(xs: &[f64]) -> f64 {
    *xs.first().unwrap()
}

pub fn not_done() {
    todo!("later")
}
