#![forbid(unsafe_code)]
//! Negative fixture: crate root carries the forbid attribute.

pub fn noop() {}
