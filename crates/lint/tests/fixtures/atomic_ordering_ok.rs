//! Negative fixture: SeqCst needs no waiver; Relaxed with a reasoned
//! suppression passes because the proof obligation is written down.
use sync::atomic::{AtomicBool, AtomicU64, Ordering};

pub fn strict(flag: &AtomicBool) -> bool {
    flag.load(Ordering::SeqCst)
}

pub fn justified(counter: &AtomicU64) -> u64 {
    // lint:allow(atomic-ordering) monotonic stats counter read by one
    // thread; staleness only under-reports a diagnostic gauge
    counter.load(Ordering::Relaxed)
}
