//! Positive fixture: if-guarded and bare condvar waits.
use sync::{Condvar, Mutex};

pub fn if_guarded(m: &Mutex<bool>, cv: &Condvar) {
    let mut g = m.lock().unwrap();
    if !*g {
        g = cv.wait(g).unwrap();
    }
    drop(g);
}

pub fn bare_timed(m: &Mutex<bool>, cv: &Condvar) {
    let g = m.lock().unwrap();
    let _ = cv.wait_timeout(g, std::time::Duration::from_millis(1));
}
