//! Positive fixture: an unjustified Relaxed ordering.
use sync::atomic::{AtomicU64, Ordering};

pub fn f(counter: &AtomicU64) -> u64 {
    counter.load(Ordering::Relaxed)
}
