//! Positive fixture: clocks, env, and stderr in library code.

pub fn time_it() -> std::time::Duration {
    let start = std::time::Instant::now();
    start.elapsed()
}

pub fn read_knob() -> Option<String> {
    std::env::var("SOME_KNOB").ok()
}

pub fn complain() {
    eprintln!("something went wrong");
}
