//! Positive fixture: HashMap in an order-sensitive crate.

use std::collections::HashMap;

pub fn count(names: &[&str]) -> HashMap<String, usize> {
    let mut out = HashMap::new();
    for n in names {
        *out.entry(n.to_string()).or_insert(0) += 1;
    }
    out
}
