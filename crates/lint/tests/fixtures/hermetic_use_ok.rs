//! Negative fixture: std, workspace crates, sibling modules, and
//! enum-variant uniform paths are all hermetic.

mod helper;

use crate::something::Inner;
use helper::assist;
use smart_stats::FeatureMatrix;
use std::collections::BTreeMap;

pub enum Direction {
    Up,
    Down,
}

pub fn pick(d: u8) -> Direction {
    use Direction::*;
    if d == 0 {
        Up
    } else {
        Down
    }
}
