//! Suppression fixture: an allow with no reason is itself a violation and
//! silences nothing.

pub fn first(xs: &[f64]) -> f64 {
    // lint:allow(panic-free)
    *xs.first().unwrap()
}
