//! Negative fixture: typed errors in library code; unwrap confined to the
//! test module.

pub fn first(xs: &[f64]) -> Result<f64, String> {
    xs.first().copied().ok_or_else(|| "empty".to_string())
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        assert_eq!(super::first(&[1.0]).unwrap(), 1.0);
    }
}
