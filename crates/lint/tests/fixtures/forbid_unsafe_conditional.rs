#![cfg_attr(not(feature = "obs-alloc"), forbid(unsafe_code))]
#![cfg_attr(feature = "obs-alloc", deny(unsafe_code))]
//! Fixture: the feature-conditional forbid/deny pair smart-telemetry's
//! counting allocator requires.

pub fn noop() {}
