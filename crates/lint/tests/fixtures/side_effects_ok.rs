//! Negative fixture: pure library code; timing words in strings and
//! comments must not trigger.

/// "Instant::now" in a string is data, not a call.
pub fn describe() -> &'static str {
    "never calls Instant::now or env::var"
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_touch_the_clock() {
        let _ = std::time::Instant::now();
    }
}
