//! Suppression fixture: naming a rule that does not exist is flagged.

pub fn noop() {
    // lint:allow(no-such-rule) this rule id is made up
    let _ = 1 + 1;
}
