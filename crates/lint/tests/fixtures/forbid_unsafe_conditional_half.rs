#![cfg_attr(not(feature = "obs-alloc"), forbid(unsafe_code))]
//! Fixture: the conditional forbid without its unconditional-deny half —
//! not an acceptable substitute for #![forbid(unsafe_code)].

pub fn noop() {}
