//! Positive fixture: imports reaching outside the hermetic workspace.

extern crate rand;

use serde::Serialize;
use std::fmt;

pub fn nothing() -> fmt::Result {
    Ok(())
}
