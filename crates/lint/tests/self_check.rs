//! Self-check: the shipped workspace — smart-lint's own source included —
//! must be lint-clean, with every suppression carrying a written reason.
//! Running under `cargo test` puts workspace cleanliness into tier-1.

use std::path::Path;

use lint::{lint_workspace, LintReport};

fn workspace_root() -> &'static Path {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint sits two levels under the workspace root");
    assert!(
        root.join("crates").is_dir(),
        "expected a crates/ directory under {}",
        root.display()
    );
    root
}

#[test]
fn workspace_is_lint_clean() {
    let outcome = lint_workspace(workspace_root()).expect("workspace lints");
    let rendered: Vec<String> = outcome
        .violations
        .iter()
        .map(|d| format!("{}:{}: [{}] {}", d.file, d.line, d.rule, d.message))
        .collect();
    assert!(
        rendered.is_empty(),
        "workspace has lint violations:\n{}",
        rendered.join("\n")
    );
    assert!(
        outcome.files_scanned > 50,
        "suspiciously few files scanned: {}",
        outcome.files_scanned
    );
}

#[test]
fn every_suppression_has_a_reason() {
    let outcome = lint_workspace(workspace_root()).expect("workspace lints");
    for s in &outcome.suppressions {
        assert!(
            !s.reason.trim().is_empty(),
            "suppression of {} at {}:{} lacks a reason",
            s.rule,
            s.file,
            s.line
        );
    }
}

#[test]
fn report_from_workspace_run_validates() {
    let outcome = lint_workspace(workspace_root()).expect("workspace lints");
    let report = LintReport::from_outcome("self-check", &outcome);
    report.validate().expect("report invariants");
    assert!(report.active_rules() >= 5, "rule set shrank unexpectedly");
}
