//! Golden-fixture suite: every rule is pinned by a positive fixture (with
//! the exact offending line asserted), a negative fixture that must stay
//! clean, and the suppression protocol is exercised end to end.

use std::collections::BTreeSet;
use std::path::Path;

use lint::{check_source, FileOutcome, TargetKind};

/// Workspace library names visible to the fixtures.
fn libs() -> BTreeSet<String> {
    [
        "smart_stats",
        "json",
        "rng",
        "sync",
        "telemetry",
        "wefr_core",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect()
}

/// Run the engine over a fixture as library code of `package`.
fn check(name: &str, package: &str, is_crate_root: bool) -> FileOutcome {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let source = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {name}: {e}"));
    check_source(
        name,
        package,
        TargetKind::Lib,
        is_crate_root,
        &libs(),
        &source,
    )
}

/// The (rule, line) pairs of every surviving violation.
fn hits(outcome: &FileOutcome) -> Vec<(String, usize)> {
    outcome
        .violations
        .iter()
        .map(|d| (d.rule.clone(), d.line))
        .collect()
}

#[test]
fn float_determinism_positive_flags_exact_line() {
    let outcome = check("float_determinism_bad.rs", "smart-stats", false);
    assert!(
        hits(&outcome).contains(&("float-determinism".to_string(), 4)),
        "got {:?}",
        hits(&outcome)
    );
}

#[test]
fn float_determinism_negative_is_clean() {
    let outcome = check("float_determinism_ok.rs", "smart-stats", false);
    assert_eq!(hits(&outcome), Vec::<(String, usize)>::new());
}

#[test]
fn panic_free_positive_flags_unwrap_and_todo() {
    let outcome = check("panic_free_bad.rs", "smart-stats", false);
    let hits = hits(&outcome);
    assert!(
        hits.contains(&("panic-free".to_string(), 4)),
        "got {hits:?}"
    );
    assert!(
        hits.contains(&("panic-free".to_string(), 8)),
        "got {hits:?}"
    );
}

#[test]
fn panic_free_negative_is_clean() {
    let outcome = check("panic_free_ok.rs", "smart-stats", false);
    assert_eq!(hits(&outcome), Vec::<(String, usize)>::new());
}

#[test]
fn panic_free_does_not_apply_outside_listed_crates() {
    // smart-telemetry is not a panic-free crate; the same source is legal.
    let outcome = check("panic_free_bad.rs", "smart-telemetry", false);
    assert!(
        !hits(&outcome).iter().any(|(r, _)| r == "panic-free"),
        "got {:?}",
        hits(&outcome)
    );
}

#[test]
fn hash_iteration_positive_flags_every_mention() {
    let outcome = check("hash_iteration_bad.rs", "smart-trees", false);
    let hits = hits(&outcome);
    assert!(
        hits.contains(&("hash-iteration".to_string(), 3)),
        "got {hits:?}"
    );
    assert_eq!(
        hits.iter().filter(|(r, _)| r == "hash-iteration").count(),
        3
    );
}

#[test]
fn hash_iteration_negative_is_clean() {
    let outcome = check("hash_iteration_ok.rs", "smart-trees", false);
    assert_eq!(hits(&outcome), Vec::<(String, usize)>::new());
}

#[test]
fn hermetic_use_positive_flags_extern_and_use() {
    let outcome = check("hermetic_use_bad.rs", "smart-stats", false);
    let hits = hits(&outcome);
    assert!(
        hits.contains(&("hermetic-use".to_string(), 3)),
        "extern crate rand: got {hits:?}"
    );
    assert!(
        hits.contains(&("hermetic-use".to_string(), 5)),
        "use serde: got {hits:?}"
    );
    assert_eq!(hits.len(), 2, "std import must stay legal: got {hits:?}");
}

#[test]
fn hermetic_use_negative_accepts_workspace_and_uniform_paths() {
    let outcome = check("hermetic_use_ok.rs", "smart-stats", false);
    assert_eq!(hits(&outcome), Vec::<(String, usize)>::new());
}

#[test]
fn side_effects_positive_flags_clock_env_stderr() {
    let outcome = check("side_effects_bad.rs", "smart-pipeline", false);
    let hits = hits(&outcome);
    assert!(
        hits.contains(&("side-effects".to_string(), 4)),
        "Instant::now: got {hits:?}"
    );
    assert!(
        hits.contains(&("side-effects".to_string(), 9)),
        "env::var: got {hits:?}"
    );
    assert!(
        hits.contains(&("side-effects".to_string(), 13)),
        "eprintln!: got {hits:?}"
    );
}

#[test]
fn side_effects_negative_ignores_strings_and_tests() {
    let outcome = check("side_effects_ok.rs", "smart-pipeline", false);
    assert_eq!(hits(&outcome), Vec::<(String, usize)>::new());
}

#[test]
fn side_effects_exempts_telemetry_and_bins() {
    let outcome = check("side_effects_bad.rs", "smart-telemetry", false);
    assert_eq!(hits(&outcome), Vec::<(String, usize)>::new());
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/side_effects_bad.rs");
    let source = std::fs::read_to_string(path).unwrap();
    let as_bin = check_source(
        "side_effects_bad.rs",
        "smart-pipeline",
        TargetKind::Bin,
        false,
        &libs(),
        &source,
    );
    assert_eq!(hits(&as_bin), Vec::<(String, usize)>::new());
}

/// Load a fixture and check it under an arbitrary workspace-relative path
/// — for rules whose allowlists are path-scoped.
fn check_at_path(fixture: &str, path: &str, package: &str, target: TargetKind) -> FileOutcome {
    let file = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(fixture);
    let source =
        std::fs::read_to_string(&file).unwrap_or_else(|e| panic!("reading {fixture}: {e}"));
    check_source(path, package, target, false, &libs(), &source)
}

#[test]
fn network_access_flags_sockets_in_library_code() {
    let outcome = check("network_bad.rs", "smart-pipeline", false);
    let hits = hits(&outcome);
    assert!(
        hits.contains(&("side-effects".to_string(), 3)),
        "use of TcpListener: got {hits:?}"
    );
    assert!(
        hits.contains(&("side-effects".to_string(), 6)),
        "TcpListener::bind: got {hits:?}"
    );
}

#[test]
fn network_access_exemption_is_by_path_not_by_crate() {
    // The blanket smart-telemetry side-effects exemption must NOT cover
    // sockets: only the two endpoint files are allowed them.
    let telemetry = check("network_bad.rs", "smart-telemetry", false);
    assert!(
        hits(&telemetry).iter().any(|(r, _)| r == "side-effects"),
        "sockets outside serve/watchdog must flag even in smart-telemetry: got {:?}",
        hits(&telemetry)
    );
    // Bins are exempt from clocks/env/stderr but not from sockets.
    let bin = check_at_path(
        "network_bad.rs",
        "src/bin/check_something.rs",
        "smart-integration",
        TargetKind::Bin,
    );
    assert!(
        hits(&bin).iter().any(|(r, _)| r == "side-effects"),
        "sockets in bins must flag: got {:?}",
        hits(&bin)
    );
}

#[test]
fn network_access_allowed_only_in_the_endpoint_files() {
    for (path, package) in [
        ("crates/telemetry/src/serve.rs", "smart-telemetry"),
        ("crates/telemetry/src/watchdog.rs", "smart-telemetry"),
        ("crates/serve/src/listener.rs", "smart-serve"),
    ] {
        let outcome = check_at_path("network_bad.rs", path, package, TargetKind::Lib);
        assert!(
            !hits(&outcome).iter().any(|(r, _)| r == "side-effects"),
            "{path}: got {:?}",
            hits(&outcome)
        );
    }
    // Near-miss paths get no exemption — in either crate.
    for (path, package) in [
        ("crates/telemetry/src/serve_extra.rs", "smart-telemetry"),
        ("crates/serve/src/daemon.rs", "smart-serve"),
    ] {
        let near_miss = check_at_path("network_bad.rs", path, package, TargetKind::Lib);
        assert!(
            hits(&near_miss).iter().any(|(r, _)| r == "side-effects"),
            "{path}: got {:?}",
            hits(&near_miss)
        );
    }
}

#[test]
fn forbid_unsafe_positive_flags_bare_crate_root() {
    let outcome = check("forbid_unsafe_bad.rs", "smart-stats", true);
    assert_eq!(hits(&outcome), vec![("forbid-unsafe".to_string(), 1)]);
}

#[test]
fn forbid_unsafe_negative_accepts_attribute() {
    let outcome = check("forbid_unsafe_ok.rs", "smart-stats", true);
    assert_eq!(hits(&outcome), Vec::<(String, usize)>::new());
}

#[test]
fn forbid_unsafe_skips_non_root_files() {
    let outcome = check("forbid_unsafe_bad.rs", "smart-stats", false);
    assert_eq!(hits(&outcome), Vec::<(String, usize)>::new());
}

#[test]
fn conditional_forbid_pair_accepted_for_telemetry_only() {
    let telemetry = check("forbid_unsafe_conditional.rs", "smart-telemetry", true);
    assert_eq!(hits(&telemetry), Vec::<(String, usize)>::new());
    // Any other crate using the same pair is still flagged: the allocator
    // exemption must not leak.
    let stats = check("forbid_unsafe_conditional.rs", "smart-stats", true);
    assert_eq!(hits(&stats), vec![("forbid-unsafe".to_string(), 1)]);
}

#[test]
fn conditional_forbid_requires_both_halves() {
    let outcome = check("forbid_unsafe_conditional_half.rs", "smart-telemetry", true);
    assert_eq!(hits(&outcome), vec![("forbid-unsafe".to_string(), 1)]);
}

#[test]
fn reasoned_suppression_absorbs_the_diagnostic() {
    let outcome = check("suppression_with_reason.rs", "smart-stats", false);
    assert_eq!(hits(&outcome), Vec::<(String, usize)>::new());
    assert_eq!(outcome.used_suppressions.len(), 1);
    let (suppression, diagnostic) = &outcome.used_suppressions[0];
    assert_eq!(diagnostic.rule, "panic-free");
    assert_eq!(
        suppression.reason,
        "fixture invariant: callers never pass empty"
    );
}

#[test]
fn reasonless_suppression_fails_and_silences_nothing() {
    let outcome = check("suppression_without_reason.rs", "smart-stats", false);
    let hits = hits(&outcome);
    assert!(
        hits.contains(&("suppression".to_string(), 5)),
        "got {hits:?}"
    );
    assert!(
        hits.contains(&("panic-free".to_string(), 6)),
        "the would-be suppressed violation must survive: got {hits:?}"
    );
    assert!(outcome.used_suppressions.is_empty());
}

#[test]
fn sync_hygiene_positive_flags_every_banned_leaf() {
    let outcome = check("sync_hygiene_bad.rs", "smart-telemetry", false);
    let hits = hits(&outcome);
    for line in [2, 3, 4, 7, 8] {
        assert!(
            hits.contains(&("sync-hygiene".to_string(), line)),
            "line {line} missing from {hits:?}"
        );
    }
    // Arc in the brace group on line 3 is fine; only Condvar fires there.
    assert_eq!(
        hits.iter()
            .filter(|(r, l)| r == "sync-hygiene" && *l == 3)
            .count(),
        1
    );
}

#[test]
fn sync_hygiene_negative_is_clean() {
    let outcome = check("sync_hygiene_ok.rs", "smart-telemetry", false);
    assert_eq!(hits(&outcome), Vec::<(String, usize)>::new());
}

#[test]
fn sync_hygiene_exempts_the_shim_itself() {
    // The same offending source checked under the crates/sync path is
    // clean: the shim is the one place std primitives are legitimate.
    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/sync_hygiene_bad.rs");
    let source = std::fs::read_to_string(&path).expect("fixture readable");
    let outcome = check_source(
        "crates/sync/src/passthrough.rs",
        "smart-sync",
        TargetKind::Lib,
        false,
        &libs(),
        &source,
    );
    assert!(
        !hits(&outcome)
            .iter()
            .any(|(rule, _)| rule == "sync-hygiene"),
        "got {:?}",
        hits(&outcome)
    );
}

#[test]
fn condvar_loop_positive_flags_if_guarded_and_bare_waits() {
    let outcome = check("condvar_loop_bad.rs", "smart-sync", false);
    let hits = hits(&outcome);
    assert!(
        hits.contains(&("condvar-loop".to_string(), 7)),
        "if-guarded wait must fire: got {hits:?}"
    );
    assert!(
        hits.contains(&("condvar-loop".to_string(), 14)),
        "bare wait_timeout must fire: got {hits:?}"
    );
}

#[test]
fn condvar_loop_negative_is_clean() {
    let outcome = check("condvar_loop_ok.rs", "smart-sync", false);
    assert_eq!(hits(&outcome), Vec::<(String, usize)>::new());
}

#[test]
fn atomic_ordering_positive_flags_relaxed() {
    let outcome = check("atomic_ordering_bad.rs", "smart-sync", false);
    assert!(
        hits(&outcome).contains(&("atomic-ordering".to_string(), 5)),
        "got {:?}",
        hits(&outcome)
    );
}

#[test]
fn atomic_ordering_negative_allows_seqcst_and_reasoned_relaxed() {
    let outcome = check("atomic_ordering_ok.rs", "smart-sync", false);
    assert_eq!(hits(&outcome), Vec::<(String, usize)>::new());
    assert_eq!(
        outcome.used_suppressions.len(),
        1,
        "the reasoned Relaxed must be recorded as a used suppression"
    );
    assert_eq!(outcome.used_suppressions[0].1.rule, "atomic-ordering");
}

#[test]
fn unknown_rule_in_suppression_is_flagged() {
    let outcome = check("suppression_unknown_rule.rs", "smart-stats", false);
    let hits = hits(&outcome);
    assert_eq!(hits.len(), 1, "got {hits:?}");
    assert_eq!(hits[0].0, "suppression");
    assert_eq!(hits[0].1, 4);
}
