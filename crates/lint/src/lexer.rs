//! A lightweight Rust lexer.
//!
//! Produces a flat token stream — identifiers (keywords included),
//! punctuation, literals, and comments — with 1-based line numbers, which
//! is exactly enough for the token-pattern rules in [`crate::rules`]. It is
//! *not* a parser: no precedence, no AST, no macro expansion. It does get
//! the hard lexical cases right, because the rules must never fire inside
//! a string literal or a comment: nested block comments, raw strings
//! (`r#"…"#`), byte strings, char literals vs. lifetimes, and numeric
//! literals with exponents all lex as single tokens.

/// The coarse class of a [`Token`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`use`, `unwrap`, `HashMap`, …).
    Ident,
    /// A single punctuation character (`.`, `:`, `!`, `{`, …).
    Punct,
    /// A string/char/number/lifetime literal. Rules never look inside.
    Literal,
    /// A line or block comment, text included (suppressions live here).
    Comment,
}

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Which class of token this is.
    pub kind: TokenKind,
    /// The token's source text (comments keep their `//` / `/*` markers).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: usize,
    /// Character offset of the token's first character — a total order
    /// over tokens, used to relate comments to neighbouring code.
    pub pos: usize,
}

/// Lex `source` into a token stream. Never fails: unrecognizable bytes
/// become single-character [`TokenKind::Punct`] tokens, so the rules stay
/// conservative on malformed input instead of crashing.
pub fn lex(source: &str) -> Vec<Token> {
    Lexer {
        chars: source.chars().collect(),
        i: 0,
        line: 1,
        tokens: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    i: usize,
    line: usize,
    tokens: Vec<Token>,
}

impl Lexer {
    fn run(mut self) -> Vec<Token> {
        while self.i < self.chars.len() {
            let c = self.chars[self.i];
            if c == '\n' {
                self.line += 1;
                self.i += 1;
            } else if c.is_whitespace() {
                self.i += 1;
            } else if c == '/' && self.peek(1) == Some('/') {
                self.line_comment();
            } else if c == '/' && self.peek(1) == Some('*') {
                self.block_comment();
            } else if c == '"' {
                self.string(TokenKind::Literal);
            } else if c == '\'' {
                self.char_or_lifetime();
            } else if c.is_ascii_digit() {
                self.number();
            } else if c == '_' || c.is_alphabetic() {
                self.ident_or_prefixed_literal();
            } else {
                self.push_span(TokenKind::Punct, self.i, self.i + 1, self.line);
                self.i += 1;
            }
        }
        self.tokens
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    fn push_span(&mut self, kind: TokenKind, start: usize, end: usize, line: usize) {
        self.tokens.push(Token {
            kind,
            text: self.chars[start..end].iter().collect(),
            line,
            pos: start,
        });
    }

    fn line_comment(&mut self) {
        let (start, line) = (self.i, self.line);
        while self.i < self.chars.len() && self.chars[self.i] != '\n' {
            self.i += 1;
        }
        self.push_span(TokenKind::Comment, start, self.i, line);
    }

    fn block_comment(&mut self) {
        let (start, line) = (self.i, self.line);
        self.i += 2;
        let mut depth = 1usize;
        while self.i < self.chars.len() && depth > 0 {
            if self.chars[self.i] == '/' && self.peek(1) == Some('*') {
                depth += 1;
                self.i += 2;
            } else if self.chars[self.i] == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                self.i += 2;
            } else {
                if self.chars[self.i] == '\n' {
                    self.line += 1;
                }
                self.i += 1;
            }
        }
        self.push_span(TokenKind::Comment, start, self.i, line);
    }

    /// A `"…"` string with escapes; `self.i` is at the opening quote.
    fn string(&mut self, kind: TokenKind) {
        let (start, line) = (self.i, self.line);
        self.i += 1;
        while self.i < self.chars.len() {
            match self.chars[self.i] {
                '\\' => {
                    // A line-continuation escape (backslash directly before
                    // the newline) still ends a source line; skipping both
                    // characters without counting it would shift the line
                    // number of every later token in the file.
                    if self.peek(1) == Some('\n') {
                        self.line += 1;
                    }
                    self.i += 2;
                }
                '"' => {
                    self.i += 1;
                    break;
                }
                c => {
                    if c == '\n' {
                        self.line += 1;
                    }
                    self.i += 1;
                }
            }
        }
        self.push_span(kind, start, self.i.min(self.chars.len()), line);
    }

    /// A raw string `r"…"` / `r#"…"#…` with `hashes` leading `#`s;
    /// `self.i` is at the opening quote.
    fn raw_string_body(&mut self, start: usize, line: usize, hashes: usize) {
        self.i += 1;
        while self.i < self.chars.len() {
            if self.chars[self.i] == '"' {
                let mut ok = true;
                for k in 0..hashes {
                    if self.peek(1 + k) != Some('#') {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    self.i += 1 + hashes;
                    break;
                }
            }
            if self.chars[self.i] == '\n' {
                self.line += 1;
            }
            self.i += 1;
        }
        self.push_span(
            TokenKind::Literal,
            start,
            self.i.min(self.chars.len()),
            line,
        );
    }

    /// `'a` (lifetime) vs `'a'` / `'\n'` / `'('` (char literal).
    fn char_or_lifetime(&mut self) {
        let (start, line) = (self.i, self.line);
        match self.peek(1) {
            Some('\\') => {
                // Escaped char literal: skip the escape head, then scan to
                // the closing quote (escapes never contain a bare `'`).
                self.i += 3;
                while self.i < self.chars.len() && self.chars[self.i] != '\'' {
                    self.i += 1;
                }
                self.i = (self.i + 1).min(self.chars.len());
                self.push_span(TokenKind::Literal, start, self.i, line);
            }
            Some(c) if c == '_' || c.is_alphanumeric() => {
                let mut j = self.i + 1;
                while j < self.chars.len()
                    && (self.chars[j] == '_' || self.chars[j].is_alphanumeric())
                {
                    j += 1;
                }
                if self.chars.get(j) == Some(&'\'') {
                    // 'a' — char literal.
                    self.i = j + 1;
                } else {
                    // 'a — lifetime.
                    self.i = j;
                }
                self.push_span(TokenKind::Literal, start, self.i, line);
            }
            Some(_) if self.peek(2) == Some('\'') => {
                // '(' and friends — punctuation char literal.
                self.i += 3;
                self.push_span(TokenKind::Literal, start, self.i, line);
            }
            _ => {
                self.push_span(TokenKind::Punct, start, start + 1, line);
                self.i += 1;
            }
        }
    }

    fn number(&mut self) {
        let (start, line) = (self.i, self.line);
        let mut seen_dot = false;
        let mut prev = '\0';
        while self.i < self.chars.len() {
            let c = self.chars[self.i];
            let take = if c == '_' || c.is_alphanumeric() {
                true
            } else if c == '.' && !seen_dot {
                // Only a digit after the dot makes it part of the number;
                // `1.max(2)` and tuple access stay separate tokens.
                match self.peek(1) {
                    Some(d) if d.is_ascii_digit() => {
                        seen_dot = true;
                        true
                    }
                    _ => false,
                }
            } else {
                // Exponent sign: 1e-5, 2.5E+3.
                (c == '+' || c == '-') && (prev == 'e' || prev == 'E')
            };
            if !take {
                break;
            }
            prev = c;
            self.i += 1;
        }
        self.push_span(TokenKind::Literal, start, self.i, line);
    }

    /// An identifier — or, when the identifier is `r`/`b`/`br` directly
    /// followed by a quote (or `#…"` for raw), a prefixed string literal.
    fn ident_or_prefixed_literal(&mut self) {
        let (start, line) = (self.i, self.line);
        let mut j = self.i;
        while j < self.chars.len() && (self.chars[j] == '_' || self.chars[j].is_alphanumeric()) {
            j += 1;
        }
        let text: String = self.chars[start..j].iter().collect();
        let next = self.chars.get(j).copied();
        let raw_capable = text == "r" || text == "br";
        let string_capable = raw_capable || text == "b";
        if string_capable && next == Some('"') {
            self.i = j;
            if raw_capable {
                self.raw_string_body(start, line, 0);
            } else {
                // b"…" still processes escapes like a normal string.
                let mark = self.tokens.len();
                self.string(TokenKind::Literal);
                self.tokens[mark].pos = start;
                self.tokens[mark].text = self.chars[start..self.i].iter().collect();
            }
            return;
        }
        if raw_capable && next == Some('#') {
            let mut hashes = 0;
            while self.chars.get(j + hashes) == Some(&'#') {
                hashes += 1;
            }
            if self.chars.get(j + hashes) == Some(&'"') {
                self.i = j + hashes;
                self.raw_string_body(start, line, hashes);
                return;
            }
            // r#ident — a raw identifier.
            let mut k = j + 1;
            while k < self.chars.len() && (self.chars[k] == '_' || self.chars[k].is_alphanumeric())
            {
                k += 1;
            }
            self.i = k;
            self.push_span(TokenKind::Ident, start, k, line);
            return;
        }
        if text == "b" && next == Some('\'') {
            // b'x' — byte literal: delegate to the char lexer, then widen.
            self.i = j;
            let mark = self.tokens.len();
            self.char_or_lifetime();
            self.tokens[mark].pos = start;
            self.tokens[mark].text = self.chars[start..self.i].iter().collect();
            return;
        }
        self.i = j;
        self.push_span(TokenKind::Ident, start, j, line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds_and_texts(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    fn code_texts(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind != TokenKind::Comment)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn idents_and_punct() {
        assert_eq!(
            kinds_and_texts("a.unwrap()"),
            vec![
                (TokenKind::Ident, "a".to_string()),
                (TokenKind::Punct, ".".to_string()),
                (TokenKind::Ident, "unwrap".to_string()),
                (TokenKind::Punct, "(".to_string()),
                (TokenKind::Punct, ")".to_string()),
            ]
        );
    }

    #[test]
    fn comments_are_tokens_with_lines() {
        let toks = lex("let x = 1; // trailing\n/* block\nspans */ let y = 2;");
        let comments: Vec<&Token> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Comment)
            .collect();
        assert_eq!(comments.len(), 2);
        assert_eq!(comments[0].line, 1);
        assert_eq!(comments[1].line, 2);
        let y = toks.iter().find(|t| t.text == "y").expect("y token");
        assert_eq!(y.line, 3);
    }

    #[test]
    fn nested_block_comments() {
        let toks = lex("/* a /* b */ c */ x");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[1].text, "x");
    }

    #[test]
    fn strings_hide_their_contents() {
        // The word unwrap inside a string must not become an ident.
        assert_eq!(code_texts(r#"let s = "x.unwrap()";"#).len(), 5);
        assert_eq!(code_texts(r##"let s = r#"a "quoted" unwrap"#;"##).len(), 5);
        assert_eq!(code_texts(r#"let b = b"unwrap";"#).len(), 5);
    }

    #[test]
    fn escaped_quotes_in_strings() {
        let toks = lex(r#""a\"b" x"#);
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[1].text, "x");
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        // 'a' is one literal; 'a in a generic is one literal too.
        let toks = code_texts("let c = 'a'; fn f<'a>(x: &'a str) {} let p = '(';");
        assert!(
            toks.iter().all(|t| t != "a"),
            "lifetime leaked as ident: {toks:?}"
        );
        let esc = lex(r"'\n' x '\u{1F600}' y");
        let idents: Vec<&Token> = esc.iter().filter(|t| t.kind == TokenKind::Ident).collect();
        assert_eq!(idents.len(), 2);
        assert_eq!(idents[0].text, "x");
        assert_eq!(idents[1].text, "y");
    }

    #[test]
    fn numbers_with_exponents_and_methods() {
        let toks = code_texts("1e-5 + 2.5E+3 + 0xFF_u32 + 1.0.total_cmp(&2.0) + x.0");
        assert!(toks.contains(&"1e-5".to_string()));
        assert!(toks.contains(&"2.5E+3".to_string()));
        assert!(toks.contains(&"total_cmp".to_string()));
        assert!(toks.contains(&"0".to_string())); // tuple access field
    }

    #[test]
    fn raw_identifiers() {
        let toks = code_texts("let r#fn = 1;");
        assert!(toks.contains(&"r#fn".to_string()));
    }

    #[test]
    fn multiline_raw_strings_keep_line_numbers() {
        let src = "let s = r#\"line one\nline two\nline three\"#;\nlet after = 1;\n";
        let after = lex(src)
            .into_iter()
            .find(|t| t.text == "after")
            .expect("after token");
        assert_eq!(after.line, 4, "raw-string newlines must advance the line");
    }

    #[test]
    fn multiline_plain_strings_keep_line_numbers() {
        let src = "let s = \"one\ntwo\";\nlet after = 1;\n";
        let after = lex(src)
            .into_iter()
            .find(|t| t.text == "after")
            .expect("after token");
        assert_eq!(after.line, 3);
    }

    #[test]
    fn line_continuation_escape_still_counts_the_newline() {
        // `\` directly before the newline is Rust's line-continuation
        // escape: the string swallows the newline, but the *source* still
        // has one, and later tokens live on later lines.
        let src = "let s = \"a\\\nb\";\nlet after = 1;\n";
        let after = lex(src)
            .into_iter()
            .find(|t| t.text == "after")
            .expect("after token");
        assert_eq!(after.line, 3, "continuation newline was not counted");
    }

    #[test]
    fn crlf_line_endings_count_like_lf() {
        let src = "let a = 1;\r\nlet b = \"x\r\ny\";\r\nlet after = 1;\r\n";
        let toks = lex(src);
        let b = toks.iter().find(|t| t.text == "b").expect("b token");
        assert_eq!(b.line, 2);
        let after = toks.iter().find(|t| t.text == "after").expect("after");
        assert_eq!(after.line, 4, "\\r\\n inside a string is still one newline");
    }

    #[test]
    fn unterminated_input_does_not_hang() {
        assert!(!lex("\"unterminated").is_empty());
        assert!(!lex("/* unterminated").is_empty());
        assert!(!lex("r#\"unterminated").is_empty());
    }
}
