#![forbid(unsafe_code)]
//! **smart-lint** — project-specific static analysis for the WEFR
//! workspace.
//!
//! The reproduction's core guarantees — bit-identical selections across
//! worker counts and split strategies, a registry-free dependency graph,
//! and panic-free library crates — used to be enforced only at a few
//! hand-picked sites. This crate makes them machine-checked at every
//! commit: a lightweight Rust [`lexer`] feeds a token-pattern rule engine
//! ([`rules`]) that scans every `crates/*/src` file ([`engine`]) and
//! exports structured diagnostics as a smart-json report ([`report`]).
//!
//! Design points (DESIGN.md §9):
//!
//! - **Zero dependencies** beyond in-repo crates, like everything else in
//!   the workspace.
//! - **Rules are Rust constants**, not a config file — scope changes show
//!   up in reviewable diffs ([`rules::PANIC_FREE_CRATES`] and friends).
//! - **Suppressions require a reason**: `// lint:allow(rule-id) why` on
//!   or directly above the offending line; a reason-less suppression is
//!   itself a violation.
//! - **Deterministic output**: files are walked in sorted order and
//!   diagnostics sorted by (file, line, rule), so the report is
//!   byte-stable for a given tree.
//!
//! Run it:
//!
//! ```text
//! cargo run -p smart-lint                      # report-only
//! cargo run -p smart-lint -- --deny-warnings   # CI mode: exit 1 on hits
//! cargo run -p smart-lint -- --list-rules      # self-documentation
//! ```

pub mod engine;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod source;

pub use engine::{discover, lint_workspace, LintError, LintOutcome, Workspace};
pub use report::{write_report, LintReport, RuleRecord};
pub use rules::{all_rules, check_file, Diagnostic, FileOutcome, RuleMeta};
pub use source::{SourceFile, Suppression, TargetKind};

use std::collections::BTreeSet;

/// Check a single in-memory source file — the fixture-test entry point.
///
/// `package` and `target` steer rule applicability exactly as they do for
/// on-disk files; `workspace_libs` lists the library names `use` may
/// reference besides std.
pub fn check_source(
    path: &str,
    package: &str,
    target: TargetKind,
    is_crate_root: bool,
    workspace_libs: &BTreeSet<String>,
    source: &str,
) -> FileOutcome {
    let file = SourceFile::parse(path, package, target, is_crate_root, source);
    check_file(&file, workspace_libs)
}
