//! The JSON lint report, mirroring the telemetry run-report conventions:
//! `smart-json` serialization to `<out>/lint_<run>.json`, schema pinned by
//! a version string and validated by `check_lint_report` in CI.

use std::path::{Path, PathBuf};

use crate::engine::{LintOutcome, SuppressionRecord};
use crate::rules::{all_rules, Diagnostic};

/// Schema tag written into every report; bump on breaking changes.
pub const SCHEMA: &str = "wefr.lint.v1";

/// One rule as recorded in the report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleRecord {
    /// Stable rule id.
    pub id: String,
    /// One-line summary.
    pub summary: String,
    /// Whether the rule ran in this invocation (always true today; kept
    /// so a future config layer cannot silently shrink coverage without
    /// the report showing it).
    pub active: bool,
}

json::impl_json!(RuleRecord {
    id,
    summary,
    active
});

/// The exported result of one lint run.
#[derive(Debug, Clone, PartialEq)]
pub struct LintReport {
    /// Schema tag ([`SCHEMA`]).
    pub schema: String,
    /// Run label (becomes the `lint_<run>.json` file stem).
    pub run: String,
    /// Every rule the engine ran.
    pub rules: Vec<RuleRecord>,
    /// Number of source files scanned.
    pub files_scanned: u64,
    /// Surviving violations, ordered by (file, line, rule).
    pub violations: Vec<Diagnostic>,
    /// Suppressions that absorbed a diagnostic, with their reasons.
    pub suppressions: Vec<SuppressionRecord>,
}

json::impl_json!(LintReport {
    schema,
    run,
    rules,
    files_scanned,
    violations,
    suppressions
});

impl LintReport {
    /// Assemble a report from an engine outcome.
    pub fn from_outcome(run: &str, outcome: &LintOutcome) -> LintReport {
        LintReport {
            schema: SCHEMA.to_string(),
            run: run.to_string(),
            rules: all_rules()
                .iter()
                .map(|r| RuleRecord {
                    id: r.id.to_string(),
                    summary: r.summary.to_string(),
                    active: true,
                })
                .collect(),
            files_scanned: outcome.files_scanned as u64,
            violations: outcome.violations.clone(),
            suppressions: outcome.suppressions.clone(),
        }
    }

    /// Number of rules that actually ran.
    pub fn active_rules(&self) -> usize {
        self.rules.iter().filter(|r| r.active).count()
    }

    /// Check report invariants: schema tag, a non-empty rule set, files
    /// scanned, and a reason on every suppression.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.schema != SCHEMA {
            return Err(format!(
                "schema mismatch: expected {SCHEMA:?}, found {:?}",
                self.schema
            ));
        }
        if self.files_scanned == 0 {
            return Err("report scanned zero files — wrong --root?".to_string());
        }
        for s in &self.suppressions {
            if s.reason.trim().is_empty() {
                return Err(format!(
                    "suppression of {} at {}:{} has no reason",
                    s.rule, s.file, s.line
                ));
            }
        }
        Ok(())
    }
}

/// Reduce a run label to a safe file stem (the telemetry convention):
/// alphanumerics, `-`, `_`, `.` pass through; everything else becomes
/// `-`.
fn sanitize(run: &str) -> String {
    let cleaned: String = run
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.') {
                c
            } else {
                '-'
            }
        })
        .collect();
    if cleaned.is_empty() {
        "run".to_string()
    } else {
        cleaned
    }
}

/// Write `lint_<run>.json` under `dir` (created if needed). Returns the
/// written path.
///
/// # Errors
///
/// Propagates directory-creation and file-write failures.
pub fn write_report(report: &LintReport, dir: &Path) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("lint_{}.json", sanitize(&report.run)));
    let mut text = json::to_string_pretty(report);
    text.push('\n');
    std::fs::write(&path, text)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::LintOutcome;

    #[test]
    fn report_round_trips_through_json() {
        let outcome = LintOutcome {
            violations: vec![Diagnostic {
                file: "crates/x/src/lib.rs".to_string(),
                line: 3,
                rule: "panic-free".to_string(),
                message: "boom".to_string(),
            }],
            suppressions: vec![SuppressionRecord {
                file: "crates/x/src/lib.rs".to_string(),
                line: 9,
                rule: "side-effects".to_string(),
                reason: "deliberate knob".to_string(),
            }],
            files_scanned: 4,
        };
        let report = LintReport::from_outcome("test", &outcome);
        assert!(report.validate().is_ok());
        assert!(report.active_rules() >= 5);
        let text = json::to_string_pretty(&report);
        let back: LintReport = json::from_str(&text).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn validate_rejects_reasonless_suppressions() {
        let outcome = LintOutcome {
            violations: vec![],
            suppressions: vec![SuppressionRecord {
                file: "f.rs".to_string(),
                line: 1,
                rule: "panic-free".to_string(),
                reason: "  ".to_string(),
            }],
            files_scanned: 1,
        };
        let report = LintReport::from_outcome("test", &outcome);
        assert!(report.validate().is_err());
    }

    #[test]
    fn sanitize_matches_telemetry_convention() {
        assert_eq!(sanitize("workspace"), "workspace");
        assert_eq!(sanitize("ci run/1"), "ci-run-1");
        assert_eq!(sanitize(""), "run");
    }
}
