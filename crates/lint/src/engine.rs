//! Workspace discovery and the lint driver.
//!
//! The engine walks every `crates/*/src/**/*.rs` file (sorted, so
//! diagnostics order is deterministic), classifies each as library or
//! binary code, runs the rule set, and folds per-file outcomes into one
//! [`LintOutcome`]. Crate and library names are scraped from each crate's
//! `Cargo.toml` with a minimal reader — enough for this workspace's flat
//! manifests, no TOML parser needed.

use std::collections::BTreeSet;
use std::fmt;
use std::path::{Path, PathBuf};

use crate::rules::{check_file, Diagnostic};
use crate::source::{SourceFile, Suppression, TargetKind};

/// Engine-level failure (I/O, malformed workspace). Rule violations are
/// *not* errors — they are the output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintError {
    /// What went wrong, with the offending path.
    pub message: String,
}

impl LintError {
    fn new(message: String) -> LintError {
        LintError { message }
    }

    fn io(context: &str, path: &Path, e: &std::io::Error) -> LintError {
        LintError::new(format!("{context} {}: {e}", path.display()))
    }
}

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for LintError {}

/// One workspace member, as discovered on disk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrateInfo {
    /// Cargo package name (`smart-stats`).
    pub package: String,
    /// Library name `use` statements see (`smart_stats`, or the explicit
    /// `[lib] name`).
    pub lib_name: String,
    /// Crate directory, absolute or root-relative.
    pub dir: PathBuf,
}

/// The discovered workspace.
#[derive(Debug, Clone)]
pub struct Workspace {
    /// Workspace root (the directory holding `crates/`).
    pub root: PathBuf,
    /// Members, sorted by package name.
    pub crates: Vec<CrateInfo>,
}

impl Workspace {
    /// The set of importable workspace library names.
    pub fn lib_names(&self) -> BTreeSet<String> {
        self.crates.iter().map(|c| c.lib_name.clone()).collect()
    }
}

/// A suppression that absorbed a diagnostic, for the report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuppressionRecord {
    /// File containing the suppression.
    pub file: String,
    /// Line of code the suppression covers.
    pub line: usize,
    /// Rule that was silenced.
    pub rule: String,
    /// The written justification.
    pub reason: String,
}

json::impl_json!(SuppressionRecord {
    file,
    line,
    rule,
    reason
});

/// Everything one lint run produced.
#[derive(Debug, Clone, Default)]
pub struct LintOutcome {
    /// All surviving violations, ordered by (file, line, rule).
    pub violations: Vec<Diagnostic>,
    /// Suppressions that absorbed a diagnostic.
    pub suppressions: Vec<SuppressionRecord>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

/// Discover the workspace rooted at `root` (must contain `crates/`).
///
/// # Errors
///
/// Returns [`LintError`] when `crates/` is missing or a member's
/// `Cargo.toml` cannot be read or names no package.
pub fn discover(root: &Path) -> Result<Workspace, LintError> {
    let crates_dir = root.join("crates");
    let entries = std::fs::read_dir(&crates_dir)
        .map_err(|e| LintError::io("reading workspace members under", &crates_dir, &e))?;
    let mut dirs: Vec<PathBuf> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| LintError::io("listing", &crates_dir, &e))?;
        let path = entry.path();
        if path.is_dir() && path.join("Cargo.toml").is_file() {
            dirs.push(path);
        }
    }
    dirs.sort();
    let mut crates = Vec::new();
    for dir in dirs {
        let manifest = dir.join("Cargo.toml");
        let text = std::fs::read_to_string(&manifest)
            .map_err(|e| LintError::io("reading", &manifest, &e))?;
        let (package, lib_name) = manifest_names(&text).ok_or_else(|| {
            LintError::new(format!("{}: no [package] name found", manifest.display()))
        })?;
        crates.push(CrateInfo {
            package,
            lib_name,
            dir,
        });
    }
    crates.sort_by(|a, b| a.package.cmp(&b.package));
    Ok(Workspace {
        root: root.to_path_buf(),
        crates,
    })
}

/// Extract `(package name, lib name)` from a flat `Cargo.toml`. The lib
/// name defaults to the package name with `-` mapped to `_`, overridden
/// by an explicit `[lib] name`.
fn manifest_names(toml: &str) -> Option<(String, String)> {
    let mut section = String::new();
    let mut package: Option<String> = None;
    let mut lib: Option<String> = None;
    for line in toml.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            section = line.to_string();
            continue;
        }
        if let Some(rest) = line.strip_prefix("name") {
            let rest = rest.trim_start();
            if let Some(value) = rest.strip_prefix('=') {
                let name = value.split('"').nth(1).map(str::to_string);
                match section.as_str() {
                    "[package]" => package = package.or(name),
                    "[lib]" => lib = lib.or(name),
                    _ => {}
                }
            }
        }
    }
    let package = package?;
    let lib_name = lib.unwrap_or_else(|| package.replace('-', "_"));
    Some((package, lib_name))
}

/// Lint the whole workspace at `root`.
///
/// # Errors
///
/// Returns [`LintError`] on discovery or file-read failures; violations
/// are reported in the returned [`LintOutcome`], not as errors.
pub fn lint_workspace(root: &Path) -> Result<LintOutcome, LintError> {
    let workspace = discover(root)?;
    let libs = workspace.lib_names();
    let mut outcome = LintOutcome::default();
    for member in &workspace.crates {
        let src = member.dir.join("src");
        if !src.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        collect_rs_files(&src, &mut files)?;
        files.sort();
        for path in files {
            let rel_in_src = path
                .strip_prefix(&src)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            let display_path = display_path(&workspace.root, &path);
            let source =
                std::fs::read_to_string(&path).map_err(|e| LintError::io("reading", &path, &e))?;
            let file = SourceFile::parse(
                &display_path,
                &member.package,
                target_kind(&rel_in_src),
                is_crate_root(&rel_in_src),
                &source,
            );
            let result = check_file(&file, &libs);
            outcome.files_scanned += 1;
            outcome.violations.extend(result.violations);
            outcome.suppressions.extend(
                result
                    .used_suppressions
                    .into_iter()
                    .map(|(s, d)| suppression_record(&display_path, &s, &d)),
            );
        }
    }
    outcome
        .violations
        .sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
    outcome
        .suppressions
        .sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
    Ok(outcome)
}

fn suppression_record(path: &str, s: &Suppression, d: &Diagnostic) -> SuppressionRecord {
    SuppressionRecord {
        file: path.to_string(),
        line: s.line,
        rule: d.rule.clone(),
        reason: s.reason.clone(),
    }
}

/// `src/bin/**` and `src/main.rs` are binary code; everything else under
/// `src/` belongs to the library target.
fn target_kind(rel_in_src: &str) -> TargetKind {
    if rel_in_src == "main.rs" || rel_in_src.starts_with("bin/") {
        TargetKind::Bin
    } else {
        TargetKind::Lib
    }
}

/// Crate roots: `src/lib.rs`, `src/main.rs`, `src/bin/name.rs`, and
/// `src/bin/name/main.rs`.
fn is_crate_root(rel_in_src: &str) -> bool {
    if rel_in_src == "lib.rs" || rel_in_src == "main.rs" {
        return true;
    }
    match rel_in_src.strip_prefix("bin/") {
        Some(rest) => !rest.contains('/') || rest.ends_with("/main.rs"),
        None => false,
    }
}

fn display_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), LintError> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| LintError::io("reading directory", dir, &e))?;
    for entry in entries {
        let entry = entry.map_err(|e| LintError::io("listing", dir, &e))?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|ext| ext == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_names_reads_package_and_lib() {
        let toml = "[package]\nname = \"smart-stats\"\nversion = \"1\"\n";
        assert_eq!(
            manifest_names(toml),
            Some(("smart-stats".to_string(), "smart_stats".to_string()))
        );
        let toml = "[package]\nname = \"smart-json\"\n[lib]\nname = \"json\"\n";
        assert_eq!(
            manifest_names(toml),
            Some(("smart-json".to_string(), "json".to_string()))
        );
        // A [[bin]] name must not shadow the package name.
        let toml = "[package]\nname = \"a\"\n[[bin]]\nname = \"b\"\n";
        assert_eq!(
            manifest_names(toml),
            Some(("a".to_string(), "a".to_string()))
        );
    }

    #[test]
    fn target_and_root_classification() {
        assert_eq!(target_kind("lib.rs"), TargetKind::Lib);
        assert_eq!(target_kind("rankers/mod.rs"), TargetKind::Lib);
        assert_eq!(target_kind("main.rs"), TargetKind::Bin);
        assert_eq!(target_kind("bin/check_hermetic.rs"), TargetKind::Bin);
        assert!(is_crate_root("lib.rs"));
        assert!(is_crate_root("bin/check_hermetic.rs"));
        assert!(is_crate_root("bin/tool/main.rs"));
        assert!(!is_crate_root("bin/tool/helper.rs"));
        assert!(!is_crate_root("rankers/mod.rs"));
    }
}
