#![forbid(unsafe_code)]
//! The `smart-lint` CLI: scan the workspace, print diagnostics, export a
//! JSON report, and (in `--deny-warnings` CI mode) fail on any violation.
//!
//! ```text
//! smart-lint [--deny-warnings] [--list-rules] [--root DIR] [--out DIR] [--run NAME]
//! ```
//!
//! - `--deny-warnings` — exit non-zero when any violation survives
//!   suppression filtering (the CI gate).
//! - `--list-rules` — print every rule with its rationale and exit.
//! - `--root DIR` — workspace root to scan (default `.`).
//! - `--out DIR` — report directory (default `results/`).
//! - `--run NAME` — report label, producing `lint_<NAME>.json`
//!   (default `workspace`).

use std::path::PathBuf;
use std::process::ExitCode;

use lint::{all_rules, lint_workspace, write_report, LintReport};

struct Args {
    deny_warnings: bool,
    list_rules: bool,
    root: PathBuf,
    out: PathBuf,
    run: String,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        deny_warnings: false,
        list_rules: false,
        root: PathBuf::from("."),
        out: PathBuf::from("results"),
        run: "workspace".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--deny-warnings" => args.deny_warnings = true,
            "--list-rules" => args.list_rules = true,
            "--root" => args.root = next_value(&mut it, "--root")?.into(),
            "--out" => args.out = next_value(&mut it, "--out")?.into(),
            "--run" => args.run = next_value(&mut it, "--run")?,
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(args)
}

fn next_value(it: &mut impl Iterator<Item = String>, flag: &str) -> Result<String, String> {
    it.next().ok_or_else(|| format!("{flag} needs a value"))
}

fn list_rules() {
    println!("smart-lint rules ({} active):", all_rules().len());
    for rule in all_rules() {
        println!("\n  {}", rule.id);
        println!("    flags:    {}", rule.summary);
        println!("    protects: {}", rule.rationale);
    }
    println!(
        "\nSuppress a finding with `// lint:allow(<rule-id>) <reason>` on or directly \
         above the line; the reason is mandatory."
    );
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("smart-lint: {message}");
            eprintln!(
                "usage: smart-lint [--deny-warnings] [--list-rules] [--root DIR] [--out DIR] \
                 [--run NAME]"
            );
            return ExitCode::FAILURE;
        }
    };
    if args.list_rules {
        list_rules();
        return ExitCode::SUCCESS;
    }
    let outcome = match lint_workspace(&args.root) {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("smart-lint: {e}");
            return ExitCode::FAILURE;
        }
    };
    for d in &outcome.violations {
        println!("{}:{}: [{}] {}", d.file, d.line, d.rule, d.message);
    }
    let report = LintReport::from_outcome(&args.run, &outcome);
    match write_report(&report, &args.out) {
        Ok(path) => println!(
            "smart-lint: {} violations, {} suppressions, {} files, {} rules -> {}",
            outcome.violations.len(),
            outcome.suppressions.len(),
            outcome.files_scanned,
            report.active_rules(),
            path.display()
        ),
        Err(e) => {
            eprintln!(
                "smart-lint: writing report under {}: {e}",
                args.out.display()
            );
            return ExitCode::FAILURE;
        }
    }
    if args.deny_warnings && !outcome.violations.is_empty() {
        eprintln!(
            "smart-lint: --deny-warnings: {} violations",
            outcome.violations.len()
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
