//! Per-file analysis context: lexed tokens, `#[cfg(test)]` regions, and
//! inline suppressions.
//!
//! Suppressions are the escape hatch of the rule engine and are
//! deliberately strict: `// lint:allow(rule-id) reason` must name the rule
//! *and* carry a written reason, or the suppression itself becomes a
//! diagnostic (DESIGN.md §9). A suppression covers the line it trails, or
//! — when it stands alone on its own line — the next line with code.

use crate::lexer::{lex, Token, TokenKind};
use crate::rules::Diagnostic;

/// Which cargo target a source file belongs to. Tests, benches, and
/// examples never reach the engine (it only walks `src/`), so two kinds
/// suffice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TargetKind {
    /// Part of the crate's library.
    Lib,
    /// A binary root or module (`src/main.rs`, `src/bin/**`).
    Bin,
}

/// One parsed inline suppression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppression {
    /// Line of code the suppression covers.
    pub line: usize,
    /// Line of the comment itself.
    pub comment_line: usize,
    /// Rule ids being allowed.
    pub rules: Vec<String>,
    /// The mandatory human-written justification.
    pub reason: String,
}

/// A lexed and classified source file, ready for rule checks.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Workspace-relative path (diagnostics use it verbatim).
    pub path: String,
    /// Cargo package name of the owning crate (e.g. `smart-stats`).
    pub package: String,
    /// Library or binary code.
    pub target: TargetKind,
    /// Whether this file is a crate root (`lib.rs`, `main.rs`,
    /// `bin/*.rs`) and must carry `#![forbid(unsafe_code)]`.
    pub is_crate_root: bool,
    /// Non-comment tokens, in source order.
    pub code: Vec<Token>,
    /// Comment tokens, in source order.
    pub comments: Vec<Token>,
    /// Valid suppressions found in comments.
    pub suppressions: Vec<Suppression>,
    /// Diagnostics produced by parsing itself (malformed or reason-less
    /// suppressions). Never suppressible.
    pub parse_diags: Vec<Diagnostic>,
    /// Inclusive line ranges covered by `#[cfg(test)]` / `#[test]` items.
    test_ranges: Vec<(usize, usize)>,
}

impl SourceFile {
    /// Lex and classify `source`.
    pub fn parse(
        path: &str,
        package: &str,
        target: TargetKind,
        is_crate_root: bool,
        source: &str,
    ) -> SourceFile {
        let tokens = lex(source);
        let mut code = Vec::new();
        let mut comments = Vec::new();
        for t in tokens {
            if t.kind == TokenKind::Comment {
                comments.push(t);
            } else {
                code.push(t);
            }
        }
        let test_ranges = test_ranges(&code);
        let mut file = SourceFile {
            path: path.to_string(),
            package: package.to_string(),
            target,
            is_crate_root,
            code,
            comments,
            suppressions: Vec::new(),
            parse_diags: Vec::new(),
            test_ranges,
        };
        file.collect_suppressions();
        file
    }

    /// Whether `line` falls inside a `#[cfg(test)]` / `#[test]` item.
    pub fn in_test(&self, line: usize) -> bool {
        self.test_ranges
            .iter()
            .any(|&(start, end)| (start..=end).contains(&line))
    }

    /// The suppression covering `rule` on `line`, if any.
    pub fn suppression_for(&self, rule: &str, line: usize) -> Option<&Suppression> {
        self.suppressions
            .iter()
            .find(|s| s.line == line && s.rules.iter().any(|r| r == rule))
    }

    fn collect_suppressions(&mut self) {
        // Split borrows: walk comments by index so `self.code` stays
        // readable while we push into the result vectors.
        for ci in 0..self.comments.len() {
            let comment = self.comments[ci].clone();
            // Doc comments are prose: the marker appearing there is
            // documentation, not a suppression.
            if is_doc_comment(&comment.text) {
                continue;
            }
            let Some(at) = comment.text.find(MARKER) else {
                continue;
            };
            match parse_allow(&comment.text[at + MARKER.len()..]) {
                Ok((rules, reason)) => {
                    if reason.is_empty() {
                        self.parse_diags.push(Diagnostic {
                            file: self.path.clone(),
                            line: comment.line,
                            rule: crate::rules::SUPPRESSION_RULE.to_string(),
                            message: format!(
                                "lint:allow({}) needs a written reason after the closing \
                                 parenthesis",
                                rules.join(", ")
                            ),
                        });
                        continue;
                    }
                    let line = self.target_line(&comment);
                    self.suppressions.push(Suppression {
                        line,
                        comment_line: comment.line,
                        rules,
                        reason,
                    });
                }
                Err(problem) => {
                    self.parse_diags.push(Diagnostic {
                        file: self.path.clone(),
                        line: comment.line,
                        rule: crate::rules::SUPPRESSION_RULE.to_string(),
                        message: format!("malformed lint:allow comment: {problem}"),
                    });
                }
            }
        }
    }

    /// The line a suppression comment covers: its own line when code
    /// precedes it there (trailing comment), otherwise the next line
    /// holding any code.
    fn target_line(&self, comment: &Token) -> usize {
        let trails_code = self
            .code
            .iter()
            .any(|t| t.line == comment.line && t.pos < comment.pos);
        if trails_code {
            return comment.line;
        }
        self.code
            .iter()
            .find(|t| t.pos > comment.pos)
            .map(|t| t.line)
            .unwrap_or(comment.line)
    }
}

/// The marker that introduces a suppression inside a comment.
const MARKER: &str = "lint:allow";

/// `///`, `//!`, `/**`, `/*!` — doc comments, never suppression carriers.
fn is_doc_comment(text: &str) -> bool {
    text.starts_with("///")
        || text.starts_with("//!")
        || text.starts_with("/*!")
        || (text.starts_with("/**") && !text.starts_with("/**/"))
}

/// Parse the `(rule, rule2) reason …` tail after `lint:allow`.
fn parse_allow(tail: &str) -> Result<(Vec<String>, String), String> {
    let tail = tail.trim_start();
    let Some(rest) = tail.strip_prefix('(') else {
        return Err("expected `(` after lint:allow".to_string());
    };
    let Some(close) = rest.find(')') else {
        return Err("missing `)` after the rule list".to_string());
    };
    let rules: Vec<String> = rest[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    if rules.is_empty() {
        return Err("empty rule list".to_string());
    }
    let mut reason = rest[close + 1..].trim();
    // Block comments carry their closing marker in the text.
    if let Some(stripped) = reason.strip_suffix("*/") {
        reason = stripped.trim_end();
    }
    Ok((rules, reason.to_string()))
}

/// Compute the inclusive line ranges of items annotated `#[cfg(test)]`
/// (including `cfg(any(test, …))` but *not* `cfg(not(test))`) or
/// `#[test]`.
fn test_ranges(code: &[Token]) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut i = 0;
    while i < code.len() {
        if !(is_punct(code, i, "#") && is_punct(code, i + 1, "[")) {
            i += 1;
            continue;
        }
        let (attr_end, is_test) = scan_attribute(code, i + 1);
        if !is_test {
            i = attr_end;
            continue;
        }
        let start_line = code[i].line;
        // Skip any further attributes on the same item.
        let mut j = attr_end;
        while is_punct(code, j, "#") && is_punct(code, j + 1, "[") {
            let (next, _) = scan_attribute(code, j + 1);
            j = next;
        }
        // Consume the item: to the first `;` at depth 0, or through the
        // brace block that starts at depth 0.
        let mut depth = 0usize;
        let mut in_braces = false;
        let mut end_line = code.get(j).map(|t| t.line).unwrap_or(start_line);
        while j < code.len() {
            let t = &code[j];
            end_line = t.line;
            if t.kind == TokenKind::Punct {
                match t.text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth = depth.saturating_sub(1),
                    "{" => {
                        depth += 1;
                        in_braces = true;
                    }
                    "}" => {
                        depth = depth.saturating_sub(1);
                        if in_braces && depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    ";" if depth == 0 => {
                        j += 1;
                        break;
                    }
                    _ => {}
                }
            }
            j += 1;
        }
        ranges.push((start_line, end_line));
        i = j;
    }
    ranges
}

/// Scan one attribute starting at its `[` token; returns the index right
/// after the closing `]` and whether the attribute gates on `test`.
fn scan_attribute(code: &[Token], open: usize) -> (usize, bool) {
    let mut depth = 0usize;
    let mut j = open;
    let mut idents: Vec<(String, usize)> = Vec::new(); // (text, bracket depth)
                                                       // `not` groups that idents may be nested under, as open-depths.
    let mut not_depths: Vec<usize> = Vec::new();
    while j < code.len() {
        let t = &code[j];
        match (t.kind, t.text.as_str()) {
            (TokenKind::Punct, "[" | "(") => {
                // Entering a group: if the previous ident was `not`, the
                // group negates its contents.
                if t.text == "(" {
                    if let Some((prev, _)) = idents.last() {
                        if prev == "not" {
                            not_depths.push(depth);
                        }
                    }
                }
                depth += 1;
            }
            (TokenKind::Punct, "]" | ")") => {
                depth = depth.saturating_sub(1);
                if not_depths.last() == Some(&depth) {
                    not_depths.pop();
                }
                if depth == 0 {
                    return (j + 1, attr_is_test(&idents));
                }
            }
            (TokenKind::Ident, text) => {
                if !not_depths.is_empty() && text == "test" {
                    // `not(test)` — record nothing, it must not count.
                } else {
                    idents.push((text.to_string(), depth));
                }
            }
            _ => {}
        }
        j += 1;
    }
    (j, attr_is_test(&idents))
}

/// `#[test]` or `#[cfg(… test …)]` (the `not(test)` case is filtered out
/// before this sees the ident list).
fn attr_is_test(idents: &[(String, usize)]) -> bool {
    match idents.first() {
        Some((head, _)) if head == "test" => true,
        Some((head, _)) if head == "cfg" => idents.iter().skip(1).any(|(t, _)| t == "test"),
        _ => false,
    }
}

fn is_punct(code: &[Token], i: usize, text: &str) -> bool {
    code.get(i)
        .is_some_and(|t| t.kind == TokenKind::Punct && t.text == text)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> SourceFile {
        SourceFile::parse("x.rs", "smart-stats", TargetKind::Lib, false, src)
    }

    #[test]
    fn cfg_test_mod_lines_are_test_lines() {
        let src = "pub fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() {}\n}\npub fn c() {}\n";
        let f = parse(src);
        assert!(!f.in_test(1));
        assert!(f.in_test(2));
        assert!(f.in_test(4));
        assert!(f.in_test(5));
        assert!(!f.in_test(6));
    }

    #[test]
    fn cfg_any_test_counts_cfg_not_test_does_not() {
        let f = parse("#[cfg(any(test, feature_x))]\nfn a() {}\n");
        assert!(f.in_test(2));
        let f = parse("#[cfg(not(test))]\nfn a() {}\nfn b() {}\n");
        assert!(
            !f.in_test(2),
            "cfg(not(test)) must not create a test region"
        );
    }

    #[test]
    fn attribute_then_semicolon_item() {
        let f = parse("#[cfg(test)]\nuse foo::bar;\nfn c() {}\n");
        assert!(f.in_test(2));
        assert!(!f.in_test(3));
    }

    #[test]
    fn trailing_suppression_covers_its_own_line() {
        let f = parse("let x = a.unwrap(); // lint:allow(panic-free) invariant: a is Some\n");
        assert_eq!(f.suppressions.len(), 1);
        assert_eq!(f.suppressions[0].line, 1);
        assert_eq!(f.suppressions[0].rules, vec!["panic-free".to_string()]);
        assert_eq!(f.suppressions[0].reason, "invariant: a is Some");
    }

    #[test]
    fn standalone_suppression_covers_next_code_line() {
        let f = parse("// lint:allow(panic-free) checked above\n// another comment\nlet x = 1;\n");
        assert_eq!(f.suppressions.len(), 1);
        assert_eq!(f.suppressions[0].line, 3);
    }

    #[test]
    fn reasonless_suppression_is_a_diagnostic() {
        let f = parse("let x = 1; // lint:allow(panic-free)\n");
        assert!(f.suppressions.is_empty());
        assert_eq!(f.parse_diags.len(), 1);
        assert_eq!(f.parse_diags[0].rule, crate::rules::SUPPRESSION_RULE);
    }

    #[test]
    fn malformed_suppression_is_a_diagnostic() {
        let f = parse("// lint:allow panic-free reasons go here\nlet x = 1;\n");
        assert_eq!(f.parse_diags.len(), 1);
        let f = parse("// lint:allow() because\nlet x = 1;\n");
        assert_eq!(f.parse_diags.len(), 1);
    }

    #[test]
    fn multi_rule_suppression_and_block_comment() {
        let f = parse("let x = 1; /* lint:allow(panic-free, side-effects) both fine here */\n");
        assert_eq!(f.suppressions.len(), 1);
        assert_eq!(f.suppressions[0].rules.len(), 2);
        assert_eq!(f.suppressions[0].reason, "both fine here");
    }
}
