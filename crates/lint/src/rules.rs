//! The rule set: token-pattern checks over [`SourceFile`]s.
//!
//! Every rule protects one invariant the WEFR reproduction depends on
//! (DESIGN.md §9): bit-identical selections across worker counts and split
//! strategies, a registry-free dependency graph, and panic-free library
//! crates. Rules and their allowlists live here as Rust constants — no
//! config file — so scope changes are reviewable diffs.

use std::collections::BTreeSet;

use crate::lexer::{Token, TokenKind};
use crate::source::{SourceFile, Suppression, TargetKind};

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line of the offending token.
    pub line: usize,
    /// Rule id (see [`all_rules`]).
    pub rule: String,
    /// Human-readable explanation.
    pub message: String,
}

json::impl_json!(Diagnostic {
    file,
    line,
    rule,
    message
});

/// Static description of one rule, used by `--list-rules` and the JSON
/// report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuleMeta {
    /// Stable kebab-case id, the name used in `lint:allow(...)`.
    pub id: &'static str,
    /// One-line summary of what the rule flags.
    pub summary: &'static str,
    /// Which workspace invariant the rule protects.
    pub rationale: &'static str,
}

/// Id of the suppression-hygiene pseudo-rule (reason-less or malformed
/// `lint:allow` comments, unknown rule ids). Not itself suppressible.
pub const SUPPRESSION_RULE: &str = "suppression";

/// Crates whose *library* code must not panic: every `unwrap`/`expect`/
/// `panic!`-family use needs a typed error or a reasoned `lint:allow`.
pub const PANIC_FREE_CRATES: &[&str] = &[
    "wefr-core",
    "smart-stats",
    "smart-trees",
    "smart-complexity",
    "smart-changepoint",
    "smart-dataset",
    "smart-pipeline",
    "smart-serve",
    "smart-lint",
];

/// Crates on the ranking/selection path, where `HashMap`/`HashSet`
/// iteration order would leak nondeterminism into selections and reports.
pub const ORDER_SENSITIVE_CRATES: &[&str] = &[
    "wefr-core",
    "smart-stats",
    "smart-trees",
    "smart-complexity",
    "smart-changepoint",
    "smart-dataset",
    "smart-pipeline",
    "smart-serve",
    "smart-lint",
];

/// Crates whose whole purpose is observation: wall-clock, environment,
/// and stderr access are their job, so the side-effects rule skips them.
pub const SIDE_EFFECT_EXEMPT_CRATES: &[&str] = &["smart-telemetry", "wefr-bench"];

/// Path roots that are always importable: the standard library facade
/// and Rust's path keywords.
const BUILTIN_ROOTS: &[&str] = &["std", "core", "alloc", "crate", "self", "super"];

/// All rules, in reporting order.
pub fn all_rules() -> Vec<RuleMeta> {
    vec![
        RuleMeta {
            id: "float-determinism",
            summary: "no partial_cmp on floats; use total_cmp",
            rationale: "partial_cmp returns None on NaN, so sorts panic or silently reorder; \
                        total_cmp keeps every float ordering deterministic (DESIGN.md §8)",
        },
        RuleMeta {
            id: "panic-free",
            summary: "no unwrap/expect/panic!/todo!/unreachable! in library code",
            rationale: "library crates must surface typed errors, not abort a fleet-scale \
                        selection run; panics that encode real invariants need a reasoned \
                        lint:allow",
        },
        RuleMeta {
            id: "hash-iteration",
            summary: "no std HashMap/HashSet in ranking/selection crates",
            rationale: "RandomState iteration order differs per process, which would break \
                        bit-identical selections across runs and worker counts (DESIGN.md §8); \
                        use BTreeMap/BTreeSet or sorted vecs",
        },
        RuleMeta {
            id: "hermetic-use",
            summary: "no use/extern crate of anything outside the workspace",
            rationale: "the build is hermetic — only in-repo path crates and std are allowed \
                        (DESIGN.md §5); catches dev-dependency imports before cargo metadata can",
        },
        RuleMeta {
            id: "side-effects",
            summary: "Instant::now/env::var/stderr only in telemetry, bench, and bins; \
                      sockets only in the metrics endpoint",
            rationale: "library hot paths must stay pure and reproducible; clocks, environment \
                        reads, and stderr writes belong to the observability layer, and network \
                        I/O belongs to smart-telemetry's serve/watchdog modules alone \
                        (DESIGN.md §6)",
        },
        RuleMeta {
            id: "forbid-unsafe",
            summary: "every crate root must declare #![forbid(unsafe_code)]",
            rationale: "the workspace's no-unsafe policy is self-enforcing: forbid cannot be \
                        overridden by inner allow attributes; smart-telemetry alone may gate \
                        forbid on the obs-alloc feature (its counting allocator is an unsafe \
                        trait impl), paired with an unconditional deny",
        },
        RuleMeta {
            id: "sync-hygiene",
            summary: "no raw std::sync Mutex/Condvar/RwLock/Barrier/atomic/mpsc outside \
                      crates/sync",
            rationale: "concurrency primitives must route through the crates/sync shim so the \
                        `model` feature can interpose its deterministic scheduler; a raw \
                        std::sync import is invisible to the model checker (DESIGN.md §13)",
        },
        RuleMeta {
            id: "condvar-loop",
            summary: "every condvar wait/wait_timeout must sit in a predicate loop, not an if",
            rationale: "condvars wake spuriously and notifications race with the predicate; an \
                        if-guarded wait silently loses wakeups — the model checker demonstrates \
                        this on the IfWaitQueue fixture (DESIGN.md §13)",
        },
        RuleMeta {
            id: "atomic-ordering",
            summary: "Ordering::Relaxed requires a reasoned lint:allow",
            rationale: "Relaxed provides no happens-before edge, so every use is a proof \
                        obligation; the written reason is the proof sketch — use SeqCst (or \
                        Acquire/Release) when in doubt (DESIGN.md §13)",
        },
        RuleMeta {
            id: SUPPRESSION_RULE,
            summary: "lint:allow must name known rules and carry a reason",
            rationale: "suppressions are reviewable waivers, not blanket opt-outs; a written \
                        reason is the price of silencing a rule",
        },
    ]
}

/// The result of checking one file: surviving violations plus the
/// suppressions that absorbed would-be violations.
#[derive(Debug, Clone, Default)]
pub struct FileOutcome {
    /// Violations that survived suppression filtering.
    pub violations: Vec<Diagnostic>,
    /// Suppressions that matched at least one diagnostic, with the
    /// diagnostic they absorbed.
    pub used_suppressions: Vec<(Suppression, Diagnostic)>,
}

/// Run every rule over `file`. `workspace_libs` is the set of library
/// names `use` may legitimately reference (besides std and path
/// keywords).
pub fn check_file(file: &SourceFile, workspace_libs: &BTreeSet<String>) -> FileOutcome {
    let mut raw = Vec::new();
    float_determinism(file, &mut raw);
    panic_free(file, &mut raw);
    hash_iteration(file, &mut raw);
    hermetic_use(file, workspace_libs, &mut raw);
    side_effects(file, &mut raw);
    forbid_unsafe(file, &mut raw);
    sync_hygiene(file, &mut raw);
    condvar_loop(file, &mut raw);
    atomic_ordering(file, &mut raw);

    let known: BTreeSet<&str> = all_rules().iter().map(|r| r.id).collect();
    let mut out = FileOutcome {
        violations: file.parse_diags.clone(),
        used_suppressions: Vec::new(),
    };
    for s in &file.suppressions {
        for rule in &s.rules {
            if !known.contains(rule.as_str()) {
                out.violations.push(Diagnostic {
                    file: file.path.clone(),
                    line: s.comment_line,
                    rule: SUPPRESSION_RULE.to_string(),
                    message: format!("lint:allow names unknown rule `{rule}`"),
                });
            }
        }
    }
    for d in raw {
        match file.suppression_for(&d.rule, d.line) {
            Some(s) => out.used_suppressions.push((s.clone(), d)),
            None => out.violations.push(d),
        }
    }
    out.violations
        .sort_by(|a, b| (a.line, &a.rule, &a.message).cmp(&(b.line, &b.rule, &b.message)));
    out
}

fn diag(file: &SourceFile, line: usize, rule: &str, message: String) -> Diagnostic {
    Diagnostic {
        file: file.path.clone(),
        line,
        rule: rule.to_string(),
        message,
    }
}

fn ident_at<'a>(code: &'a [Token], i: usize) -> Option<&'a str> {
    code.get(i)
        .filter(|t| t.kind == TokenKind::Ident)
        .map(|t| t.text.as_str())
}

fn punct_at(code: &[Token], i: usize, text: &str) -> bool {
    code.get(i)
        .is_some_and(|t| t.kind == TokenKind::Punct && t.text == text)
}

/// `code[i]` and `code[i+1]` spell `::`.
fn path_sep(code: &[Token], i: usize) -> bool {
    punct_at(code, i, ":") && punct_at(code, i + 1, ":")
}

fn in_list(list: &[&str], package: &str) -> bool {
    list.contains(&package)
}

/// Rule `float-determinism`: any `.partial_cmp(` / `::partial_cmp(`
/// outside tests. The workspace compares nothing but floats with it, and
/// floats must be ordered with `total_cmp` to stay NaN-safe and
/// deterministic.
fn float_determinism(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    let code = &file.code;
    for i in 0..code.len() {
        if ident_at(code, i) != Some("partial_cmp") {
            continue;
        }
        // Method call or path form only; skip `fn partial_cmp` definitions.
        let call_like = i > 0 && (punct_at(code, i - 1, ".") || punct_at(code, i - 1, ":"));
        if !call_like || file.in_test(code[i].line) {
            continue;
        }
        out.push(diag(
            file,
            code[i].line,
            "float-determinism",
            "partial_cmp on floats is not total (None on NaN); use total_cmp, or a reasoned \
             lint:allow if the operands cannot be floats"
                .to_string(),
        ));
    }
}

const PANIC_METHODS: &[&str] = &["unwrap", "expect", "unwrap_err", "expect_err"];
const PANIC_MACROS: &[&str] = &["panic", "todo", "unimplemented", "unreachable"];

/// Rule `panic-free`: no panicking calls in library code of the crates in
/// [`PANIC_FREE_CRATES`]. Bins, tests, benches, and examples are exempt.
fn panic_free(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !in_list(PANIC_FREE_CRATES, &file.package) || file.target != TargetKind::Lib {
        return;
    }
    let code = &file.code;
    for i in 0..code.len() {
        let Some(text) = ident_at(code, i) else {
            continue;
        };
        if file.in_test(code[i].line) {
            continue;
        }
        let method = PANIC_METHODS.contains(&text)
            && i > 0
            && punct_at(code, i - 1, ".")
            && punct_at(code, i + 1, "(");
        let mac = PANIC_MACROS.contains(&text) && punct_at(code, i + 1, "!");
        if method {
            out.push(diag(
                file,
                code[i].line,
                "panic-free",
                format!(
                    ".{text}() panics at runtime; propagate a typed error instead, or add a \
                     reasoned lint:allow if this encodes a real invariant"
                ),
            ));
        } else if mac {
            out.push(diag(
                file,
                code[i].line,
                "panic-free",
                format!(
                    "{text}! aborts the caller; library code must return typed errors, or \
                     carry a reasoned lint:allow for true invariants"
                ),
            ));
        }
    }
}

/// Rule `hash-iteration`: no `HashMap`/`HashSet` in order-sensitive
/// crates' library code.
fn hash_iteration(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !in_list(ORDER_SENSITIVE_CRATES, &file.package) || file.target != TargetKind::Lib {
        return;
    }
    for t in &file.code {
        if t.kind == TokenKind::Ident
            && (t.text == "HashMap" || t.text == "HashSet")
            && !file.in_test(t.line)
        {
            out.push(diag(
                file,
                t.line,
                "hash-iteration",
                format!(
                    "{} iterates in RandomState order, which varies per process; use \
                     BTreeMap/BTreeSet or a sorted Vec on ranking/selection paths",
                    t.text
                ),
            ));
        }
    }
}

/// Rule `hermetic-use`: the first segment of every `use` path and every
/// `extern crate` must be std, a path keyword, a workspace library, or a
/// name visibly local to the file. Applies everywhere, tests included —
/// in-src test modules are built by the same hermetic graph.
///
/// Two uniform-path forms (edition 2021) are recognised as local:
/// `use sibling_mod::X` where `mod sibling_mod` is declared in the same
/// file, and `use SomeType::*` (enum-variant imports) — external crates
/// are conventionally snake_case, so an uppercase-initial root can only
/// name an in-scope item.
fn hermetic_use(file: &SourceFile, workspace_libs: &BTreeSet<String>, out: &mut Vec<Diagnostic>) {
    let code = &file.code;
    let local_mods = declared_mods(code);
    let allowed = |root: &str| {
        BUILTIN_ROOTS.contains(&root)
            || workspace_libs.contains(root)
            || local_mods.contains(root)
            || root.chars().next().is_some_and(char::is_uppercase)
    };
    let mut i = 0;
    while i < code.len() {
        if ident_at(code, i) == Some("extern") && ident_at(code, i + 1) == Some("crate") {
            if let Some(root) = ident_at(code, i + 2) {
                if !allowed(root) {
                    out.push(diag(
                        file,
                        code[i].line,
                        "hermetic-use",
                        format!(
                            "extern crate `{root}` is not a workspace crate; the build is \
                             hermetic (DESIGN.md §5)"
                        ),
                    ));
                }
            }
            i += 3;
            continue;
        }
        if ident_at(code, i) != Some("use") {
            i += 1;
            continue;
        }
        for (root, line) in use_roots(code, i + 1) {
            if !allowed(&root) {
                out.push(diag(
                    file,
                    line,
                    "hermetic-use",
                    format!(
                        "use of `{root}` — not a workspace crate or std; the dependency graph \
                         is hermetic (DESIGN.md §5)"
                    ),
                ));
            }
        }
        i += 1;
    }
}

/// Names declared by `mod <name>` anywhere in the file — legal roots for
/// uniform-path `use` statements referring to sibling modules.
fn declared_mods(code: &[Token]) -> BTreeSet<String> {
    let mut mods = BTreeSet::new();
    for i in 0..code.len() {
        if ident_at(code, i) == Some("mod") {
            if let Some(name) = ident_at(code, i + 1) {
                mods.insert(name.to_string());
            }
        }
    }
    mods
}

/// The root segments of a `use` statement starting right after the `use`
/// token: `use a::b` yields `a`; `use {a::b, c}` yields `a` and `c`;
/// nested groups under a root contribute nothing further.
fn use_roots(code: &[Token], mut i: usize) -> Vec<(String, usize)> {
    let mut roots = Vec::new();
    if path_sep(code, i) {
        i += 2; // `use ::std::…` — absolute path, root follows.
    }
    if let Some(root) = ident_at(code, i) {
        roots.push((root.to_string(), code[i].line));
        return roots;
    }
    if !punct_at(code, i, "{") {
        return roots;
    }
    // Top-level brace group: the first ident of each depth-1 element.
    let mut depth = 1usize;
    let mut expect_root = true;
    i += 1;
    while i < code.len() && depth > 0 {
        let t = &code[i];
        match (t.kind, t.text.as_str()) {
            (TokenKind::Punct, "{") => depth += 1,
            (TokenKind::Punct, "}") => depth -= 1,
            (TokenKind::Punct, ",") if depth == 1 => expect_root = true,
            (TokenKind::Punct, ";") => break,
            (TokenKind::Ident, root) if expect_root => {
                roots.push((root.to_string(), t.line));
                expect_root = false;
            }
            _ => {}
        }
        i += 1;
    }
    roots
}

const ENV_CALLS: &[&str] = &["var", "var_os", "vars", "set_var", "remove_var"];
const CLOCK_TYPES: &[&str] = &["Instant", "SystemTime"];
const NET_TYPES: &[&str] = &["TcpListener", "TcpStream", "UdpSocket"];

/// The only files allowed to touch the network: the live metrics endpoint,
/// the watchdog (DESIGN.md §6), and the smart-serve query listener
/// (DESIGN.md §14). The exemption is by exact path, not by crate — even
/// the rest of those crates, and every bin, stays socket-free.
const NET_ALLOWED_FILES: &[&str] = &[
    "crates/telemetry/src/serve.rs",
    "crates/telemetry/src/watchdog.rs",
    "crates/serve/src/listener.rs",
];

/// Rule `side-effects`: wall-clock reads, environment access, and stderr
/// writes only in [`SIDE_EFFECT_EXEMPT_CRATES`], bins, and tests; socket
/// types only in [`NET_ALLOWED_FILES`] and tests.
fn side_effects(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    network_access(file, out);
    if in_list(SIDE_EFFECT_EXEMPT_CRATES, &file.package) || file.target == TargetKind::Bin {
        return;
    }
    let code = &file.code;
    for i in 0..code.len() {
        let Some(text) = ident_at(code, i) else {
            continue;
        };
        if file.in_test(code[i].line) {
            continue;
        }
        let line = code[i].line;
        if (text == "eprintln" || text == "eprint") && punct_at(code, i + 1, "!") {
            out.push(diag(
                file,
                line,
                "side-effects",
                format!("{text}! writes to stderr from library code; log via telemetry instead"),
            ));
        } else if CLOCK_TYPES.contains(&text)
            && path_sep(code, i + 1)
            && ident_at(code, i + 3) == Some("now")
        {
            out.push(diag(
                file,
                line,
                "side-effects",
                format!(
                    "{text}::now() makes library output depend on wall-clock; timing belongs \
                     to telemetry spans and bench targets"
                ),
            ));
        } else if text == "env"
            && path_sep(code, i + 1)
            && ident_at(code, i + 3).is_some_and(|c| ENV_CALLS.contains(&c))
        {
            out.push(diag(
                file,
                line,
                "side-effects",
                "environment access from library code makes runs irreproducible; read env in \
                 bins or telemetry and pass values down"
                    .to_string(),
            ));
        } else if text == "stderr"
            && punct_at(code, i + 1, "(")
            && (i == 0 || !punct_at(code, i - 1, "."))
        {
            out.push(diag(
                file,
                line,
                "side-effects",
                "direct stderr handle in library code; route output through telemetry".to_string(),
            ));
        }
    }
}

/// The network half of the side-effects rule, with its own narrower
/// allowlist (see [`NET_ALLOWED_FILES`]).
fn network_access(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if NET_ALLOWED_FILES.contains(&file.path.as_str()) {
        return;
    }
    for t in &file.code {
        if t.kind == TokenKind::Ident
            && NET_TYPES.contains(&t.text.as_str())
            && !file.in_test(t.line)
        {
            out.push(diag(
                file,
                t.line,
                "side-effects",
                format!(
                    "{} opens network I/O; sockets are allowed only in smart-telemetry's \
                     serve/watchdog modules and smart-serve's listener (DESIGN.md §6, §14)",
                    t.text
                ),
            ));
        }
    }
}

/// Leaves of `std::sync` that must be imported through the crates/sync
/// shim. Everything else under `std::sync` (`Arc`, `LockResult`,
/// `PoisonError`, `OnceLock`, …) has no scheduling behaviour and stays
/// importable from std.
const SYNC_SHIMMED_LEAVES: &[&str] = &["Mutex", "Condvar", "RwLock", "Barrier", "atomic", "mpsc"];

/// The shim itself: the only files allowed to touch raw std::sync
/// primitives, because its passthrough aliases and model internals are
/// built from them.
const SYNC_SHIM_PREFIX: &str = "crates/sync/src/";

/// Rule `sync-hygiene`: `std::sync::{Mutex, Condvar, RwLock, Barrier,
/// atomic, mpsc}` — spelled as a `use` or as an inline path — is banned
/// outside `crates/sync` and tests. Routing through the shim is what lets
/// `--features model` swap in the deterministic scheduler; a raw std
/// primitive is invisible to it.
fn sync_hygiene(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if file.path.starts_with(SYNC_SHIM_PREFIX) {
        return;
    }
    let code = &file.code;
    for i in 0..code.len() {
        if ident_at(code, i) != Some("std")
            || !path_sep(code, i + 1)
            || ident_at(code, i + 3) != Some("sync")
            || !path_sep(code, i + 4)
            || file.in_test(code[i].line)
        {
            continue;
        }
        // `std::sync::<leaf>` or `std::sync::{group}` — flag every banned
        // leaf; depth-1 group roots cover `use std::sync::{Arc, Mutex}`.
        let leaves: Vec<(String, usize)> = match ident_at(code, i + 6) {
            Some(leaf) => vec![(leaf.to_string(), code[i + 6].line)],
            None => use_roots(code, i + 6),
        };
        for (leaf, line) in leaves {
            if SYNC_SHIMMED_LEAVES.contains(&leaf.as_str()) {
                out.push(diag(
                    file,
                    line,
                    "sync-hygiene",
                    format!(
                        "std::sync::{leaf} bypasses the crates/sync shim; import it from \
                         `sync` so model-feature builds can interpose the deterministic \
                         scheduler, or add a reasoned lint:allow"
                    ),
                ));
            }
        }
    }
}

/// How a brace block affects the condvar-loop search: a loop body
/// satisfies the rule, a function/item boundary stops the search, and
/// everything else (if/else/match arms, plain blocks) is looked through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BlockKind {
    Loop,
    Barrier,
    Transparent,
}

/// Rule `condvar-loop`: every `.wait(` / `.wait_timeout(` must be
/// lexically inside a `while`/`loop`/`for` body (or the loop's own head
/// expression, the `while !flag.wait_timeout(poll)` idiom) before any
/// enclosing `fn`/`impl`/`mod`/`trait` boundary. `.wait_while` carries its
/// predicate and is exempt. An `if`-guarded wait loses spurious and raced
/// wakeups; smart-sync's model checker demonstrates the failure on its
/// `IfWaitQueue` fixture.
fn condvar_loop(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    let code = &file.code;
    let mut stack: Vec<BlockKind> = Vec::new();
    let mut pending: Option<BlockKind> = None;
    for i in 0..code.len() {
        let t = &code[i];
        match t.kind {
            TokenKind::Ident => match t.text.as_str() {
                "while" | "loop" | "for" => pending = Some(BlockKind::Loop),
                "fn" | "impl" | "mod" | "trait" => pending = Some(BlockKind::Barrier),
                "wait" | "wait_timeout" => {
                    let method = i > 0 && punct_at(code, i - 1, ".") && punct_at(code, i + 1, "(");
                    if !method || file.in_test(t.line) {
                        continue;
                    }
                    let in_loop_head = pending == Some(BlockKind::Loop);
                    let in_loop_body = stack.iter().rev().find(|k| **k != BlockKind::Transparent)
                        == Some(&BlockKind::Loop);
                    if !(in_loop_head || in_loop_body) {
                        out.push(diag(
                            file,
                            t.line,
                            "condvar-loop",
                            format!(
                                ".{}() outside a predicate loop: condvar wakeups are spurious \
                                 and race with the predicate, so re-check in a while/loop (or \
                                 carry a reasoned lint:allow if the caller owns the loop)",
                                t.text
                            ),
                        ));
                    }
                }
                _ => {}
            },
            TokenKind::Punct => match t.text.as_str() {
                "{" => stack.push(pending.take().unwrap_or(BlockKind::Transparent)),
                "}" => {
                    stack.pop();
                }
                ";" => pending = None,
                _ => {}
            },
            _ => {}
        }
    }
}

/// Rule `atomic-ordering`: every `Ordering::Relaxed` outside tests needs a
/// reasoned `lint:allow`. Relaxed establishes no happens-before edge, so
/// each use is a small proof obligation — the suppression reason is where
/// the proof sketch lives.
fn atomic_ordering(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    let code = &file.code;
    for i in 3..code.len() {
        if ident_at(code, i) == Some("Relaxed")
            && path_sep(code, i - 2)
            && ident_at(code, i - 3) == Some("Ordering")
            && !file.in_test(code[i].line)
        {
            out.push(diag(
                file,
                code[i].line,
                "atomic-ordering",
                "Ordering::Relaxed has no happens-before edge; use SeqCst (or \
                 Acquire/Release), or state why Relaxed is sound in a lint:allow reason"
                    .to_string(),
            ));
        }
    }
}

/// `pattern` appears as a contiguous token-text run somewhere in `code`.
fn has_token_run(code: &[Token], pattern: &[&str]) -> bool {
    code.len() >= pattern.len()
        && (0..=code.len() - pattern.len()).any(|i| {
            pattern
                .iter()
                .enumerate()
                .all(|(k, want)| code[i + k].text == *want)
        })
}

/// smart-telemetry's crate root may replace the unconditional forbid with
/// this exact pair: forbid whenever the `obs-alloc` counting allocator
/// (an `unsafe impl GlobalAlloc`) is compiled out, deny when it is in.
/// Both halves are required — matching anything looser would let the
/// exemption leak.
fn conditional_forbid_pair(code: &[Token]) -> bool {
    let forbid_off = [
        "#",
        "!",
        "[",
        "cfg_attr",
        "(",
        "not",
        "(",
        "feature",
        "=",
        "\"obs-alloc\"",
        ")",
        ",",
        "forbid",
        "(",
        "unsafe_code",
        ")",
        ")",
        "]",
    ];
    let deny_on = [
        "#",
        "!",
        "[",
        "cfg_attr",
        "(",
        "feature",
        "=",
        "\"obs-alloc\"",
        ",",
        "deny",
        "(",
        "unsafe_code",
        ")",
        ")",
        "]",
    ];
    has_token_run(code, &forbid_off) && has_token_run(code, &deny_on)
}

/// Rule `forbid-unsafe`: crate roots must carry `#![forbid(unsafe_code)]`
/// — or, for smart-telemetry only, the feature-conditional pair accepted
/// by [`conditional_forbid_pair`].
fn forbid_unsafe(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !file.is_crate_root {
        return;
    }
    let code = &file.code;
    let pattern = ["#", "!", "[", "forbid", "(", "unsafe_code", ")", "]"];
    let found = has_token_run(code, &pattern)
        || (file.package == "smart-telemetry" && conditional_forbid_pair(code));
    if !found {
        out.push(diag(
            file,
            1,
            "forbid-unsafe",
            "crate root lacks #![forbid(unsafe_code)]; the no-unsafe policy must be \
             self-enforcing"
                .to_string(),
        ));
    }
}
