#![forbid(unsafe_code)]
//! Data-complexity measures and the automated feature-count threshold of
//! the WEFR reproduction (§IV-C of the paper).
//!
//! WEFR does not ask the operator how many features to keep. Instead it
//! scans the aggregated feature ranking top-down, scores every prefix with
//! an ensemble of Ho–Basu complexity measures plus a size penalty, and
//! stops when the score stops improving:
//!
//! ```text
//! e(t) = α · F(top-t subset) + (1 − α) · t / total        (α = 0.75)
//! F    = (1/F1 + F2 + 1/F3) / 3
//! ```
//!
//! # Example
//!
//! ```
//! use smart_complexity::{automated_feature_count, ThresholdConfig};
//! use smart_stats::FeatureMatrix;
//!
//! # fn main() -> Result<(), smart_complexity::ComplexityError> {
//! let data = FeatureMatrix::from_columns(
//!     vec!["informative".into(), "noise".into()],
//!     vec![
//!         vec![0.1, 0.2, 5.0, 5.1, 0.15, 5.05],
//!         vec![1.0, 2.0, 1.5, 2.5, 2.2, 1.2],
//!     ],
//! ).expect("valid matrix");
//! let labels = [false, false, true, true, false, true];
//! let result = automated_feature_count(&data, &labels, &[0, 1], &ThresholdConfig::default())?;
//! assert_eq!(result.chosen, 1); // the noise feature is cut
//! # Ok(())
//! # }
//! ```

pub mod ensemble;
pub mod error;
pub mod measures;
pub mod threshold;

pub use ensemble::{ensemble_complexity, EnsembleConfig};
pub use error::ComplexityError;
pub use measures::{feature_measures, FeatureMeasures, SubsetMeasures};
pub use threshold::{automated_feature_count, ScanPoint, ScanResult, ThresholdConfig};
