//! The ensemble complexity measure `F` of Seijo-Pardo et al. \[26\]:
//! `F = (1/F1 + F2 + 1/F3) / d`, oriented so that *higher F = harder
//! problem*.

use crate::measures::SubsetMeasures;

/// Configuration of the ensemble measure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnsembleConfig {
    /// Normalizing divisor. The paper prints `/2`; with three ensembled
    /// measures the mean (`3`) is used here — see DESIGN.md §2. The divisor
    /// only rescales `F`.
    pub divisor: f64,
    /// Cap applied to the reciprocal terms `1/F1` and `1/F3` so that a
    /// useless feature set yields a large-but-finite complexity.
    pub reciprocal_cap: f64,
}

impl Default for EnsembleConfig {
    fn default() -> Self {
        EnsembleConfig {
            divisor: 3.0,
            reciprocal_cap: 10.0,
        }
    }
}

/// The ensemble complexity `F` of a feature subset. Higher = harder.
pub fn ensemble_complexity(m: &SubsetMeasures, config: &EnsembleConfig) -> f64 {
    let r1 = capped_reciprocal(m.f1, config.reciprocal_cap);
    let r3 = capped_reciprocal(m.f3, config.reciprocal_cap);
    (r1 + m.f2 + r3) / config.divisor
}

fn capped_reciprocal(x: f64, cap: f64) -> f64 {
    if x <= 0.0 {
        cap
    } else {
        (1.0 / x).min(cap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn easy_subset_has_low_complexity() {
        let easy = SubsetMeasures {
            f1: 50.0,
            f2: 0.0,
            f3: 1.0,
        };
        let hard = SubsetMeasures {
            f1: 0.01,
            f2: 1.0,
            f3: 0.05,
        };
        let config = EnsembleConfig::default();
        assert!(ensemble_complexity(&easy, &config) < ensemble_complexity(&hard, &config));
    }

    #[test]
    fn empty_subset_hits_the_cap() {
        let config = EnsembleConfig::default();
        let f = ensemble_complexity(&SubsetMeasures::empty(), &config);
        // (cap + 1 + cap) / 3 = 7.0 with defaults.
        assert!((f - 7.0).abs() < 1e-12, "f = {f}");
    }

    #[test]
    fn divisor_rescales_only() {
        let m = SubsetMeasures {
            f1: 2.0,
            f2: 0.5,
            f3: 0.5,
        };
        let d3 = ensemble_complexity(&m, &EnsembleConfig::default());
        let d2 = ensemble_complexity(
            &m,
            &EnsembleConfig {
                divisor: 2.0,
                ..EnsembleConfig::default()
            },
        );
        assert!((d2 / d3 - 1.5).abs() < 1e-12);
    }

    #[test]
    fn known_value() {
        let m = SubsetMeasures {
            f1: 2.0,
            f2: 0.5,
            f3: 0.5,
        };
        // (0.5 + 0.5 + 2.0) / 3 = 1.0
        let f = ensemble_complexity(&m, &EnsembleConfig::default());
        assert!((f - 1.0).abs() < 1e-12);
    }

    #[test]
    fn complexity_is_nonnegative_and_finite() {
        let config = EnsembleConfig::default();
        for f1 in [0.0, 0.1, 1e9] {
            for f2 in [0.0, 0.5, 1.0] {
                for f3 in [0.0, 0.5, 1.0] {
                    let f = ensemble_complexity(&SubsetMeasures { f1, f2, f3 }, &config);
                    assert!(f.is_finite() && f >= 0.0);
                }
            }
        }
    }
}
