//! Automated feature-count selection (§IV-C of the paper, after
//! Seijo-Pardo et al. \[27\]): scan the aggregated ranking top-down, score
//! each prefix with `e = α·F + (1−α)·ξ` (complexity of the prefix plus a
//! linearly growing size penalty), seed with the top `log₂(#features)`
//! features, and stop as soon as `e` stops improving.

use crate::ensemble::{ensemble_complexity, EnsembleConfig};
use crate::error::ComplexityError;
use crate::measures::{feature_measures, SubsetMeasures};
use smart_stats::FeatureMatrix;

/// Configuration of the automated scan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThresholdConfig {
    /// Weight of the complexity term (paper: `α = 0.75`).
    pub alpha: f64,
    /// Ensemble-measure configuration.
    pub ensemble: EnsembleConfig,
}

impl Default for ThresholdConfig {
    fn default() -> Self {
        ThresholdConfig {
            alpha: 0.75,
            ensemble: EnsembleConfig::default(),
        }
    }
}

/// One evaluated prefix of the scan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScanPoint {
    /// Number of features in the prefix.
    pub count: usize,
    /// Ensemble complexity `F` of the prefix.
    pub complexity: f64,
    /// Size penalty `ξ = count / total`.
    pub xi: f64,
    /// Combined score `e = α·F + (1−α)·ξ`.
    pub e: f64,
}

/// Outcome of the automated scan.
#[derive(Debug, Clone, PartialEq)]
pub struct ScanResult {
    /// The selected feature count.
    pub chosen: usize,
    /// Every evaluated prefix, in scan order (useful for diagnostics and
    /// the Fig. 2 style sweep).
    pub trace: Vec<ScanPoint>,
}

/// Determine the number of features to keep from `ranking_order` (feature
/// column indices, best first).
///
/// # Errors
///
/// Returns [`ComplexityError::InvalidParameter`] when the ranking is empty,
/// references out-of-range columns, or `alpha` is outside `[0, 1]`;
/// [`ComplexityError::LengthMismatch`] when labels don't cover the matrix;
/// and [`ComplexityError::SingleClass`] when labels are one-class.
pub fn automated_feature_count(
    data: &FeatureMatrix,
    labels: &[bool],
    ranking_order: &[usize],
    config: &ThresholdConfig,
) -> Result<ScanResult, ComplexityError> {
    if ranking_order.is_empty() {
        return Err(ComplexityError::InvalidParameter {
            message: "ranking is empty".to_string(),
        });
    }
    if !(0.0..=1.0).contains(&config.alpha) {
        return Err(ComplexityError::InvalidParameter {
            message: "alpha must be in [0, 1]".to_string(),
        });
    }
    if labels.len() != data.n_rows() {
        return Err(ComplexityError::LengthMismatch {
            values: data.n_rows(),
            labels: labels.len(),
        });
    }
    if ranking_order.iter().any(|&c| c >= data.n_features()) {
        return Err(ComplexityError::InvalidParameter {
            message: "ranking references a column outside the matrix".to_string(),
        });
    }

    let total = ranking_order.len();
    // Seed: the top log2(#features) features are always kept (they are the
    // highest-ranked ones).
    let seed = ((total as f64).log2().floor() as usize).clamp(1, total);
    let span = telemetry::span!("threshold_scan", total = total, seed = seed);

    let mut subset = SubsetMeasures::empty();
    let mut trace = Vec::with_capacity(total);
    let mut best_e = f64::INFINITY;
    let mut chosen = seed;
    let mut stop_reason = "exhausted";

    for (i, &col) in ranking_order.iter().enumerate() {
        let m = feature_measures(data.column(col), labels)?;
        subset = subset.with_feature(&m);
        let count = i + 1;
        let complexity = ensemble_complexity(&subset, &config.ensemble);
        let xi = count as f64 / total as f64;
        let e = config.alpha * complexity + (1.0 - config.alpha) * xi;
        telemetry::debug!(
            "threshold_scan",
            format!("prefix {count}: e = {e:.4}"),
            count = count,
            complexity = complexity,
            xi = xi,
            e = e,
        );
        trace.push(ScanPoint {
            count,
            complexity,
            xi,
            e,
        });

        if count < seed {
            continue;
        }
        if count == seed {
            best_e = e;
            chosen = seed;
            continue;
        }
        if e < best_e {
            best_e = e;
            chosen = count;
        } else {
            // First worsening stops the scan (paper's break rule).
            stop_reason = "worsened";
            break;
        }
    }
    span.record("chosen", chosen);
    span.record("scanned", trace.len());
    span.record("stop_reason", stop_reason);
    Ok(ScanResult { chosen, trace })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rng::rngs::StdRng;
    use rng::{RngExt, SeedableRng};

    /// `n_good` informative features followed by `n_noise` noise features.
    fn make_data(n_good: usize, n_noise: usize, n_rows: usize) -> (FeatureMatrix, Vec<bool>) {
        let mut rng = StdRng::seed_from_u64(7);
        let labels: Vec<bool> = (0..n_rows).map(|i| i % 3 == 0).collect();
        let mut names = Vec::new();
        let mut columns = Vec::new();
        for g in 0..n_good {
            names.push(format!("good{g}"));
            // Informative with decreasing strength and some noise.
            let sep = 3.0 / (g + 1) as f64;
            columns.push(
                labels
                    .iter()
                    .map(|&l| if l { sep } else { 0.0 } + rng.random::<f64>())
                    .collect(),
            );
        }
        for z in 0..n_noise {
            names.push(format!("noise{z}"));
            columns.push((0..n_rows).map(|_| rng.random::<f64>()).collect());
        }
        (FeatureMatrix::from_columns(names, columns).unwrap(), labels)
    }

    #[test]
    fn keeps_good_drops_noise() {
        let (data, labels) = make_data(4, 12, 300);
        let order: Vec<usize> = (0..16).collect(); // good features ranked first
        let result =
            automated_feature_count(&data, &labels, &order, &ThresholdConfig::default()).unwrap();
        assert!(
            (3..=8).contains(&result.chosen),
            "chosen = {} (trace: {:?})",
            result.chosen,
            result.trace.iter().map(|p| p.e).collect::<Vec<_>>()
        );
    }

    #[test]
    fn xi_penalty_grows_linearly() {
        let (data, labels) = make_data(2, 6, 200);
        let order: Vec<usize> = (0..8).collect();
        let result =
            automated_feature_count(&data, &labels, &order, &ThresholdConfig::default()).unwrap();
        for p in &result.trace {
            assert!((p.xi - p.count as f64 / 8.0).abs() < 1e-12);
            assert!(
                (p.e - (0.75 * p.complexity + 0.25 * p.xi)).abs() < 1e-12,
                "e mismatch at count {}",
                p.count
            );
        }
    }

    #[test]
    fn seed_is_log2_of_total() {
        let (data, labels) = make_data(1, 15, 200);
        let order: Vec<usize> = (0..16).collect();
        let result =
            automated_feature_count(&data, &labels, &order, &ThresholdConfig::default()).unwrap();
        // log2(16) = 4: even if e worsens immediately, at least 4 kept.
        assert!(result.chosen >= 4);
    }

    #[test]
    fn alpha_one_ignores_size_penalty() {
        // With alpha = 1 and complexity flat after the first feature, the
        // scan breaks early only when complexity rises — which the monotone
        // subset measures make impossible, so everything is kept.
        let (data, labels) = make_data(2, 6, 200);
        let order: Vec<usize> = (0..8).collect();
        let config = ThresholdConfig {
            alpha: 1.0,
            ..ThresholdConfig::default()
        };
        let result = automated_feature_count(&data, &labels, &order, &config).unwrap();
        // Non-increasing complexity means it never breaks before the end —
        // but ties stop the scan (e not strictly smaller), so chosen is
        // wherever complexity last strictly improved.
        assert!(result.chosen >= 3);
    }

    #[test]
    fn partial_rankings_are_supported() {
        // Rank only a subset of the matrix columns.
        let (data, labels) = make_data(2, 6, 150);
        let order = vec![0, 1, 3];
        let result =
            automated_feature_count(&data, &labels, &order, &ThresholdConfig::default()).unwrap();
        assert!(result.chosen <= 3);
    }

    #[test]
    fn rejects_bad_inputs() {
        let (data, labels) = make_data(1, 3, 50);
        let config = ThresholdConfig::default();
        assert!(automated_feature_count(&data, &labels, &[], &config).is_err());
        assert!(automated_feature_count(&data, &labels, &[99], &config).is_err());
        assert!(automated_feature_count(&data, &labels[..10], &[0], &config).is_err());
        let bad_alpha = ThresholdConfig {
            alpha: 1.5,
            ..config
        };
        assert!(automated_feature_count(&data, &labels, &[0], &bad_alpha).is_err());
        let one_class = vec![false; 50];
        assert!(matches!(
            automated_feature_count(&data, &one_class, &[0], &config),
            Err(ComplexityError::SingleClass)
        ));
    }

    #[test]
    fn trace_stops_at_break() {
        let (data, labels) = make_data(2, 10, 200);
        let order: Vec<usize> = (0..12).collect();
        let result =
            automated_feature_count(&data, &labels, &order, &ThresholdConfig::default()).unwrap();
        // The trace covers exactly the scanned prefixes: chosen, possibly
        // plus the one worsening point, never the full tail after a break.
        assert!(result.trace.len() >= result.chosen);
        assert!(result.trace.len() <= order.len());
        let last = result.trace.last().unwrap();
        assert!(last.count == result.trace.len());
    }

    #[test]
    fn single_feature_ranking() {
        let (data, labels) = make_data(1, 1, 80);
        let result =
            automated_feature_count(&data, &labels, &[0], &ThresholdConfig::default()).unwrap();
        assert_eq!(result.chosen, 1);
        assert_eq!(result.trace.len(), 1);
    }
}
