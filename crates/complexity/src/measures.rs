//! Ho–Basu data-complexity measures for a two-class problem, per feature
//! and for feature subsets.
//!
//! * **F1** — maximum Fisher's discriminant ratio: per feature
//!   `(μ₊ - μ₋)² / (σ₊² + σ₋²)`; for a subset, the maximum over its
//!   features. *Higher = easier.*
//! * **F2** — volume of the overlap region: per feature the normalized
//!   overlap of the two classes' value ranges; for a subset, the product
//!   over its features. *Lower = easier.*
//! * **F3** — maximum individual feature efficiency: the fraction of samples
//!   a feature can separate outside the class overlap region; for a subset,
//!   the maximum over its features. *Higher = easier.*

use crate::error::ComplexityError;

/// The three per-feature complexity measures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FeatureMeasures {
    /// Fisher's discriminant ratio (higher = easier).
    pub fisher: f64,
    /// Overlap-region fraction in `[0, 1]` (lower = easier).
    pub overlap: f64,
    /// Feature efficiency in `[0, 1]` (higher = easier).
    pub efficiency: f64,
}

/// Compute the three measures for a single feature.
///
/// # Errors
///
/// Returns [`ComplexityError::EmptyInput`],
/// [`ComplexityError::LengthMismatch`], or
/// [`ComplexityError::SingleClass`] for degenerate inputs.
pub fn feature_measures(
    values: &[f64],
    labels: &[bool],
) -> Result<FeatureMeasures, ComplexityError> {
    if values.is_empty() {
        return Err(ComplexityError::EmptyInput);
    }
    if values.len() != labels.len() {
        return Err(ComplexityError::LengthMismatch {
            values: values.len(),
            labels: labels.len(),
        });
    }
    let pos: Vec<f64> = values
        .iter()
        .zip(labels)
        .filter(|(_, &l)| l)
        .map(|(&v, _)| v)
        .collect();
    let neg: Vec<f64> = values
        .iter()
        .zip(labels)
        .filter(|(_, &l)| !l)
        .map(|(&v, _)| v)
        .collect();
    if pos.is_empty() || neg.is_empty() {
        return Err(ComplexityError::SingleClass);
    }

    Ok(FeatureMeasures {
        fisher: fisher_ratio(&pos, &neg),
        overlap: overlap_fraction(&pos, &neg),
        efficiency: feature_efficiency(&pos, &neg, values.len()),
    })
}

fn class_stats(xs: &[f64]) -> (f64, f64, f64, f64) {
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
    let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
    let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    (mean, var, min, max)
}

/// Fisher's discriminant ratio between the two class samples. A feature
/// whose classes differ in mean with zero within-class variance gets a
/// large finite ratio (capped at 1e6) rather than infinity.
fn fisher_ratio(pos: &[f64], neg: &[f64]) -> f64 {
    let (mp, vp, _, _) = class_stats(pos);
    let (mn, vn, _, _) = class_stats(neg);
    let num = (mp - mn) * (mp - mn);
    let den = vp + vn;
    if den <= 0.0 {
        if num > 0.0 {
            1e6
        } else {
            0.0
        }
    } else {
        (num / den).min(1e6)
    }
}

/// Normalized overlap of the two classes' value ranges, in `[0, 1]`.
fn overlap_fraction(pos: &[f64], neg: &[f64]) -> f64 {
    let (_, _, min_p, max_p) = class_stats(pos);
    let (_, _, min_n, max_n) = class_stats(neg);
    let overlap = (max_p.min(max_n) - min_p.max(min_n)).max(0.0);
    let span = max_p.max(max_n) - min_p.min(min_n);
    if span <= 0.0 {
        // Identical constant feature for both classes: total overlap.
        1.0
    } else {
        (overlap / span).clamp(0.0, 1.0)
    }
}

/// Fraction of all samples lying *outside* the class overlap region — the
/// samples this feature alone can classify.
fn feature_efficiency(pos: &[f64], neg: &[f64], total: usize) -> f64 {
    let (_, _, min_p, max_p) = class_stats(pos);
    let (_, _, min_n, max_n) = class_stats(neg);
    let lo = min_p.max(min_n);
    let hi = max_p.min(max_n);
    if hi < lo {
        // Disjoint ranges: everything is separable.
        return 1.0;
    }
    let inside = pos
        .iter()
        .chain(neg.iter())
        .filter(|&&v| (lo..=hi).contains(&v))
        .count();
    (total - inside) as f64 / total as f64
}

/// The subset-level measures of a growing feature prefix, foldable one
/// feature at a time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SubsetMeasures {
    /// `max` of per-feature Fisher ratios.
    pub f1: f64,
    /// Product of per-feature overlap fractions.
    pub f2: f64,
    /// `max` of per-feature efficiencies.
    pub f3: f64,
}

impl SubsetMeasures {
    /// The empty subset (worst-case measures).
    pub fn empty() -> Self {
        SubsetMeasures {
            f1: 0.0,
            f2: 1.0,
            f3: 0.0,
        }
    }

    /// Fold one more feature into the subset.
    pub fn with_feature(self, m: &FeatureMeasures) -> Self {
        SubsetMeasures {
            f1: self.f1.max(m.fisher),
            f2: self.f2 * m.overlap,
            f3: self.f3.max(m.efficiency),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn separated() -> (Vec<f64>, Vec<bool>) {
        let values = vec![1.0, 2.0, 3.0, 10.0, 11.0, 12.0];
        let labels = vec![false, false, false, true, true, true];
        (values, labels)
    }

    fn mixed() -> (Vec<f64>, Vec<bool>) {
        let values = vec![1.0, 2.0, 3.0, 4.0, 2.5, 3.5, 1.5, 4.5];
        let labels = vec![false, false, false, false, true, true, true, true];
        (values, labels)
    }

    #[test]
    fn separated_feature_is_easy() {
        let (v, l) = separated();
        let m = feature_measures(&v, &l).unwrap();
        assert!(m.fisher > 10.0, "fisher = {}", m.fisher);
        assert_eq!(m.overlap, 0.0);
        assert_eq!(m.efficiency, 1.0);
    }

    #[test]
    fn mixed_feature_is_hard() {
        let (v, l) = mixed();
        let m = feature_measures(&v, &l).unwrap();
        assert!(m.fisher < 1.0, "fisher = {}", m.fisher);
        assert!(m.overlap > 0.5, "overlap = {}", m.overlap);
        assert!(m.efficiency < 0.5, "efficiency = {}", m.efficiency);
    }

    #[test]
    fn constant_feature_is_useless() {
        let values = vec![5.0; 6];
        let labels = vec![false, false, false, true, true, true];
        let m = feature_measures(&values, &labels).unwrap();
        assert_eq!(m.fisher, 0.0);
        assert_eq!(m.overlap, 1.0);
        assert_eq!(m.efficiency, 0.0);
    }

    #[test]
    fn zero_variance_but_distinct_means() {
        let values = vec![1.0, 1.0, 2.0, 2.0];
        let labels = vec![false, false, true, true];
        let m = feature_measures(&values, &labels).unwrap();
        assert_eq!(m.fisher, 1e6);
        assert_eq!(m.overlap, 0.0);
        assert_eq!(m.efficiency, 1.0);
    }

    #[test]
    fn rejects_degenerate_inputs() {
        assert_eq!(feature_measures(&[], &[]), Err(ComplexityError::EmptyInput));
        assert!(matches!(
            feature_measures(&[1.0], &[true, false]),
            Err(ComplexityError::LengthMismatch { .. })
        ));
        assert_eq!(
            feature_measures(&[1.0, 2.0], &[true, true]),
            Err(ComplexityError::SingleClass)
        );
    }

    #[test]
    fn subset_fold_improves_with_good_feature() {
        let (v, l) = separated();
        let good = feature_measures(&v, &l).unwrap();
        let (v, l) = mixed();
        let bad = feature_measures(&v, &l).unwrap();

        let only_bad = SubsetMeasures::empty().with_feature(&bad);
        let both = only_bad.with_feature(&good);
        assert!(both.f1 > only_bad.f1);
        assert!(both.f2 < only_bad.f2);
        assert!(both.f3 > only_bad.f3);
    }

    #[test]
    fn subset_empty_is_worst() {
        let e = SubsetMeasures::empty();
        assert_eq!(e.f1, 0.0);
        assert_eq!(e.f2, 1.0);
        assert_eq!(e.f3, 0.0);
    }

    fn gen_labeled(g: &mut rng::prop::Gen, min: usize, max: usize) -> (Vec<f64>, Vec<bool>) {
        let n = g.usize_in(min, max);
        (g.vec_f64(n, n, -1e3, 1e3), g.vec_bool_mixed(n, n))
    }

    #[test]
    fn prop_measures_in_range() {
        rng::prop_check!(|g| {
            let (values, labels) = gen_labeled(g, 4, 79);
            let m = feature_measures(&values, &labels).unwrap();
            assert!(m.fisher >= 0.0);
            assert!((0.0..=1.0).contains(&m.overlap));
            assert!((0.0..=1.0).contains(&m.efficiency));
        });
    }

    #[test]
    fn prop_subset_monotone() {
        rng::prop_check!(|g| {
            // Adding a feature can only keep or improve F1/F3 and keep or
            // shrink F2.
            let (v1, l1) = gen_labeled(g, 4, 39);
            let (v2, l2) = gen_labeled(g, 4, 39);
            let m1 = feature_measures(&v1, &l1).unwrap();
            let m2 = feature_measures(&v2, &l2).unwrap();
            let one = SubsetMeasures::empty().with_feature(&m1);
            let two = one.with_feature(&m2);
            assert!(two.f1 >= one.f1);
            assert!(two.f2 <= one.f2);
            assert!(two.f3 >= one.f3);
        });
    }
}
