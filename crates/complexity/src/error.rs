//! Error type for complexity measures.

use std::fmt;

/// Errors produced by complexity-measure routines.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ComplexityError {
    /// The input was empty.
    EmptyInput,
    /// Values and labels had different lengths.
    LengthMismatch {
        /// Number of values.
        values: usize,
        /// Number of labels.
        labels: usize,
    },
    /// Labels contained only one class — complexity of a two-class problem
    /// is undefined.
    SingleClass,
    /// A parameter was outside its valid domain.
    InvalidParameter {
        /// Description of the violation.
        message: String,
    },
}

impl fmt::Display for ComplexityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ComplexityError::EmptyInput => write!(f, "input is empty"),
            ComplexityError::LengthMismatch { values, labels } => {
                write!(f, "got {values} values but {labels} labels")
            }
            ComplexityError::SingleClass => {
                write!(f, "labels contain a single class; two classes are required")
            }
            ComplexityError::InvalidParameter { message } => {
                write!(f, "invalid parameter: {message}")
            }
        }
    }
}

impl std::error::Error for ComplexityError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ComplexityError::LengthMismatch {
            values: 5,
            labels: 4,
        };
        assert!(e.to_string().contains('5') && e.to_string().contains('4'));
        assert!(ComplexityError::SingleClass
            .to_string()
            .contains("single class"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ComplexityError>();
    }
}
