//! Differential tests: the histogram split engine against the exact engine.
//!
//! On losslessly binned features (≤ 255 distinct values) with 0/1 targets
//! every partial sum is an exact integer, so the two engines must agree
//! **bitwise**: same gain, same threshold, same left count, and — at the
//! tree level — identical trees from the same RNG stream. On quantized
//! features the histogram engine is exactly "the exact engine run on the
//! quantized column", and its gain never exceeds the exact gain on the raw
//! column (its boundaries are a subset of the raw boundaries).

use rng::prop::Gen;
use rng::rngs::StdRng;
use rng::SeedableRng;
use smart_stats::FeatureMatrix;
use smart_trees::split::best_split;
use smart_trees::{BinnedMatrix, MaxFeatures, RegressionTree, TreeConfig};

fn single_column(values: &[f64]) -> FeatureMatrix {
    FeatureMatrix::from_columns(vec!["f0".into()], vec![values.to_vec()]).unwrap()
}

/// Exact-engine best split of one column.
fn exact_split(values: &[f64], targets: &[f64], msl: usize) -> Option<smart_trees::split::Split> {
    let mut pairs: Vec<(f64, f64)> = values
        .iter()
        .copied()
        .zip(targets.iter().copied())
        .collect();
    best_split(&mut pairs, msl)
}

/// A column with at most `max_distinct` distinct values.
fn low_cardinality_column(g: &mut Gen, n: usize, max_distinct: usize) -> Vec<f64> {
    let d = g.usize_in(2, max_distinct);
    let pool: Vec<f64> = (0..d).map(|_| g.f64_in(-50.0, 50.0)).collect();
    (0..n).map(|_| pool[g.usize_in(0, d - 1)]).collect()
}

fn binary_targets(g: &mut Gen, n: usize) -> Vec<f64> {
    (0..n).map(|_| g.usize_in(0, 1) as f64).collect()
}

#[test]
fn prop_exactly_binned_split_is_bitwise_identical() {
    rng::prop_check!(|g| {
        let n = g.usize_in(4, 80);
        let values = low_cardinality_column(g, n, 12);
        let targets = binary_targets(g, n);
        let msl = g.usize_in(1, 3);

        let binned = BinnedMatrix::from_matrix(&single_column(&values)).unwrap();
        assert!(binned.is_exact(0));
        let rows: Vec<usize> = (0..n).collect();
        let hist = binned.best_split(0, &rows, &targets, msl);
        let exact = exact_split(&values, &targets, msl);
        // 0/1 targets: gains are exact integers-over-integers on both
        // sides, so the whole Split must match bit for bit.
        assert_eq!(hist, exact);
    });
}

#[test]
fn prop_exactly_binned_split_matches_with_continuous_targets() {
    rng::prop_check!(|g| {
        let n = g.usize_in(4, 60);
        let values = low_cardinality_column(g, n, 10);
        let targets: Vec<f64> = (0..n).map(|_| g.f64_in(0.0, 1.0)).collect();

        let binned = BinnedMatrix::from_matrix(&single_column(&values)).unwrap();
        let rows: Vec<usize> = (0..n).collect();
        let hist = binned.best_split(0, &rows, &targets, 1);
        let exact = exact_split(&values, &targets, 1);
        match (hist, exact) {
            (Some(h), Some(e)) => {
                // Continuous targets accumulate in different orders, so
                // gains agree only to rounding — but the chosen boundary
                // must be the same.
                assert_eq!(h.threshold, e.threshold);
                assert_eq!(h.n_left, e.n_left);
                assert!((h.gain - e.gain).abs() <= 1e-9 * e.gain.abs().max(1.0));
            }
            (h, e) => assert_eq!(h.map(|s| s.n_left), e.map(|s| s.n_left)),
        }
    });
}

#[test]
fn prop_quantized_split_equals_exact_on_quantized_column() {
    rng::prop_check!(|g| {
        let n = g.usize_in(30, 120);
        let max_bins = g.usize_in(2, 16);
        let values: Vec<f64> = (0..n).map(|_| g.f64_in(-100.0, 100.0)).collect();
        let targets = binary_targets(g, n);
        let msl = g.usize_in(1, 3);

        let binned = BinnedMatrix::with_max_bins(&single_column(&values), max_bins).unwrap();
        let rows: Vec<usize> = (0..n).collect();
        let hist = binned.best_split(0, &rows, &targets, msl);

        // The strong property: the histogram search over raw values IS the
        // exact search over the quantized column (values snapped to their
        // bin upper). With 0/1 targets the match is bitwise.
        let quantized = binned.quantized_matrix();
        let exact_on_quantized = exact_split(quantized.column(0), &targets, msl);
        assert_eq!(hist, exact_on_quantized);

        if let Some(h) = hist {
            // min_samples_leaf is never violated by quantization.
            assert!(h.n_left >= msl && n - h.n_left >= msl);
            // Histogram boundaries are a subset of the raw boundaries, so
            // quantization can only lose gain, never invent it.
            if let Some(e) = exact_split(&values, &targets, msl) {
                assert!(
                    h.gain <= e.gain + 1e-9,
                    "hist {} > exact {}",
                    h.gain,
                    e.gain
                );
            }
        }
    });
}

#[test]
fn prop_trees_are_identical_on_exactly_binned_data() {
    rng::prop_check!(|g| {
        let n = g.usize_in(20, 100);
        let columns: Vec<Vec<f64>> = (0..3).map(|_| low_cardinality_column(g, n, 9)).collect();
        let names = vec!["a".into(), "b".into(), "c".into()];
        let data = FeatureMatrix::from_columns(names, columns).unwrap();
        let targets = binary_targets(g, n);
        let rows: Vec<usize> = (0..n).collect();
        let binned = BinnedMatrix::from_matrix(&data).unwrap();
        let seed = g.usize_in(0, u32::MAX as usize) as u64;

        for max_features in [MaxFeatures::All, MaxFeatures::Sqrt] {
            let config = TreeConfig {
                max_depth: 5,
                max_features,
                ..TreeConfig::default()
            };
            let mut rng_a = StdRng::seed_from_u64(seed);
            let exact = RegressionTree::fit(&data, &targets, &rows, &config, &mut rng_a).unwrap();
            let mut rng_b = StdRng::seed_from_u64(seed);
            let hist =
                RegressionTree::fit_binned(&binned, &targets, &rows, &config, &mut rng_b).unwrap();
            // Same RNG stream + bit-identical split decisions ⇒ the same
            // tree, node for node — and both engines must have consumed
            // the same number of RNG draws to stay in lockstep.
            assert_eq!(exact, hist, "max_features = {max_features:?}");
            assert_eq!(exact.predict(&data).unwrap(), hist.predict(&data).unwrap());
        }
    });
}

#[test]
fn quantized_tree_predicts_raw_rows_like_quantized_rows() {
    // Thresholds of a histogram-trained tree are bin uppers, so a raw value
    // and its quantized image route identically through every node.
    let mut g = Gen::new(0xB17);
    let n = 300;
    let columns: Vec<Vec<f64>> = (0..2)
        .map(|_| (0..n).map(|_| g.f64_in(-10.0, 10.0)).collect())
        .collect();
    let data = FeatureMatrix::from_columns(vec!["x".into(), "y".into()], columns).unwrap();
    let targets = binary_targets(&mut g, n);
    let rows: Vec<usize> = (0..n).collect();
    let binned = BinnedMatrix::with_max_bins(&data, 32).unwrap();
    assert!(!binned.is_exact(0) && !binned.is_exact(1));

    let config = TreeConfig {
        max_depth: 6,
        ..TreeConfig::default()
    };
    let mut rng = StdRng::seed_from_u64(5);
    let tree = RegressionTree::fit_binned(&binned, &targets, &rows, &config, &mut rng).unwrap();
    assert_eq!(
        tree.predict(&data).unwrap(),
        tree.predict(&binned.quantized_matrix()).unwrap()
    );
}
