//! Best-split search for one feature under the variance-reduction (MSE)
//! criterion.
//!
//! For binary 0/1 targets, variance reduction orders splits identically to
//! Gini gain (weighted variance `Σ nᶜ·pᶜ(1-pᶜ)` is exactly half the weighted
//! Gini), so one criterion serves classification trees, Random Forest, and
//! gradient-boosting regression trees alike.

/// A candidate split of one feature.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Split {
    /// Threshold: rows with `value <= threshold` go left.
    pub threshold: f64,
    /// Variance-reduction gain, in units of `Σ(y - ȳ)²` removed.
    pub gain: f64,
    /// Number of rows in the left child (including missing rows when
    /// `nan_left` is set).
    pub n_left: usize,
    /// Where rows with a *missing* (NaN) feature value are routed: the side
    /// whose gain was better when the histogram engine scanned both options
    /// (DESIGN.md §11). The exact engine never proposes splits on features
    /// with missing values, so it always reports `true` here.
    pub nan_left: bool,
}

/// Find the best split of a feature given `(value, target)` pairs.
///
/// `pairs` is sorted in place by value. Returns `None` when no split
/// satisfies `min_samples_leaf` on both sides or no split has positive gain
/// (e.g. the feature is constant).
///
/// NaN input yields `None` rather than a panic: the exact engine has no
/// ordering for a missing value, so a feature containing NaN is simply
/// unsplittable here. The histogram engine handles missing values instead,
/// via the reserved NaN bin in [`BinnedMatrix`](crate::BinnedMatrix)
/// (missing rows are routed to whichever side scans better).
pub fn best_split(pairs: &mut [(f64, f64)], min_samples_leaf: usize) -> Option<Split> {
    let n = pairs.len();
    if n < 2 * min_samples_leaf {
        return None;
    }
    pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
    // total_cmp sorts negative NaNs first and positive NaNs last.
    if pairs[0].0.is_nan() || pairs[n - 1].0.is_nan() {
        return None;
    }

    let total_sum: f64 = pairs.iter().map(|p| p.1).sum();
    // gain(k) = S_L²/n_L + S_R²/n_R - S²/n  (the Σy² terms cancel).
    let base = total_sum * total_sum / n as f64;

    let mut best: Option<Split> = None;
    let mut left_sum = 0.0;
    for k in 1..n {
        left_sum += pairs[k - 1].1;
        // Can't split between equal values.
        if pairs[k - 1].0 == pairs[k].0 {
            continue;
        }
        if k < min_samples_leaf || n - k < min_samples_leaf {
            continue;
        }
        let right_sum = total_sum - left_sum;
        let gain = left_sum * left_sum / k as f64 + right_sum * right_sum / (n - k) as f64 - base;
        if gain > best.map_or(1e-12, |b| b.gain) {
            // Threshold = the left boundary value, with `<=` semantics.
            // (A midpoint can round back onto a boundary when adjacent
            // values are nearly equal, silently moving the tie group.)
            let threshold = pairs[k - 1].0;
            best = Some(Split {
                threshold,
                gain,
                n_left: k,
                nan_left: true,
            });
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_separation() {
        let mut pairs = vec![(1.0, 0.0), (2.0, 0.0), (10.0, 1.0), (11.0, 1.0)];
        let s = best_split(&mut pairs, 1).unwrap();
        assert_eq!(s.threshold, 2.0);
        assert_eq!(s.n_left, 2);
        // Total SSE of [0,0,1,1] around mean 0.5 is 1.0; a perfect split
        // removes all of it.
        assert!((s.gain - 1.0).abs() < 1e-12);
    }

    #[test]
    fn constant_feature_has_no_split() {
        let mut pairs = vec![(5.0, 0.0), (5.0, 1.0), (5.0, 0.0)];
        assert!(best_split(&mut pairs, 1).is_none());
    }

    #[test]
    fn constant_target_has_no_split() {
        let mut pairs = vec![(1.0, 1.0), (2.0, 1.0), (3.0, 1.0)];
        assert!(best_split(&mut pairs, 1).is_none());
    }

    #[test]
    fn min_samples_leaf_respected() {
        let mut pairs = vec![(1.0, 0.0), (2.0, 1.0), (3.0, 1.0), (4.0, 1.0)];
        let s = best_split(&mut pairs, 2);
        if let Some(s) = s {
            assert!(s.n_left >= 2 && pairs.len() - s.n_left >= 2);
        }
        let mut pairs = vec![(1.0, 0.0), (2.0, 1.0)];
        assert!(best_split(&mut pairs, 2).is_none());
    }

    #[test]
    fn threshold_is_left_boundary() {
        let mut pairs = vec![(0.0, 0.0), (4.0, 1.0)];
        let s = best_split(&mut pairs, 1).unwrap();
        assert_eq!(s.threshold, 0.0);
    }

    #[test]
    fn picks_strongest_boundary() {
        // Feature: target flips at value 5 (one error) vs at value 2 (clean).
        let mut pairs = vec![
            (1.0, 0.0),
            (2.0, 0.0),
            (3.0, 1.0),
            (4.0, 1.0),
            (5.0, 1.0),
            (6.0, 1.0),
        ];
        let s = best_split(&mut pairs, 1).unwrap();
        assert_eq!(s.threshold, 2.0, "threshold {}", s.threshold);
    }

    #[test]
    fn nan_feature_value_returns_none_instead_of_panicking() {
        // Regression: this used to panic via partial_cmp().expect() mid-fit.
        let mut pairs = vec![(1.0, 0.0), (f64::NAN, 1.0), (3.0, 1.0), (4.0, 1.0)];
        assert!(best_split(&mut pairs, 1).is_none());
        let mut pairs = vec![(-f64::NAN, 0.0), (1.0, 1.0), (2.0, 0.0)];
        assert!(best_split(&mut pairs, 1).is_none());
    }

    #[test]
    fn nan_target_returns_none() {
        let mut pairs = vec![(1.0, 0.0), (2.0, f64::NAN), (3.0, 1.0), (4.0, 1.0)];
        assert!(best_split(&mut pairs, 1).is_none());
    }

    fn gen_split_pairs(g: &mut rng::prop::Gen) -> Vec<(f64, f64)> {
        let n = g.usize_in(2, 59);
        (0..n)
            .map(|_| (g.f64_in(-100.0, 100.0), g.f64_in(0.0, 1.0)))
            .collect()
    }

    #[test]
    fn prop_gain_is_nonnegative_and_bounded() {
        rng::prop_check!(|g| {
            let mut pairs = gen_split_pairs(g);
            if let Some(s) = best_split(&mut pairs, 1) {
                assert!(s.gain > 0.0);
                // Gain can't exceed the total SSE.
                let n = pairs.len() as f64;
                let mean: f64 = pairs.iter().map(|p| p.1).sum::<f64>() / n;
                let sse: f64 = pairs.iter().map(|p| (p.1 - mean).powi(2)).sum();
                assert!(s.gain <= sse + 1e-9);
                assert!(s.n_left >= 1 && s.n_left < pairs.len());
            }
        });
    }

    #[test]
    fn prop_split_separates_values() {
        rng::prop_check!(|g| {
            let mut pairs = gen_split_pairs(g);
            if let Some(s) = best_split(&mut pairs, 1) {
                // After the in-place sort, rows 0..n_left are <= threshold.
                for (i, &(v, _)) in pairs.iter().enumerate() {
                    if i < s.n_left {
                        assert!(v <= s.threshold);
                    } else {
                        assert!(v > s.threshold);
                    }
                }
            }
        });
    }
}
