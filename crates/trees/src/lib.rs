#![forbid(unsafe_code)]
//! From-scratch tree learners for the WEFR reproduction.
//!
//! Rust's ML ecosystem has no mature equivalents of scikit-learn's
//! `RandomForestClassifier` or XGBoost, so this crate hand-rolls the three
//! tree learners the paper depends on:
//!
//! * [`RegressionTree`] — a CART tree under the variance-reduction
//!   criterion (identical split ordering to Gini on 0/1 targets), with
//!   per-node feature subsampling and re-labelable leaves.
//! * [`RandomForest`] — bagged trees with out-of-bag scoring, impurity
//!   (MDI) importances, and Breiman OOB *permutation* importances (the
//!   importance the paper's Random Forest selector uses).
//! * [`GradientBoosting`] — logistic-loss boosting with Newton leaf values
//!   and XGBoost-style gain / split-count importances.
//!
//! # Example
//!
//! ```
//! use smart_stats::FeatureMatrix;
//! use smart_trees::{ForestConfig, RandomForest};
//!
//! # fn main() -> Result<(), smart_trees::TreesError> {
//! let data = FeatureMatrix::from_columns(
//!     vec!["errors".into()],
//!     vec![vec![0.0, 1.0, 8.0, 9.0]],
//! ).expect("valid matrix");
//! let labels = [false, false, true, true];
//! let config = ForestConfig { n_trees: 10, ..ForestConfig::default() };
//! let forest = RandomForest::fit(&data, &labels, &config)?;
//! let proba = forest.predict_proba(&data)?;
//! assert!(proba[3] > proba[0]);
//! # Ok(())
//! # }
//! ```

pub mod binned;
pub mod config;
pub mod error;
pub mod forest;
pub mod gbt;
pub mod split;
pub mod tree;

pub use binned::{BinnedMatrix, DEFAULT_MAX_BINS};
pub use config::{MaxFeatures, SplitStrategy, TreeConfig};
pub use error::TreesError;
pub use forest::{ForestConfig, RandomForest};
pub use gbt::{BoostingConfig, GradientBoosting};
pub use tree::RegressionTree;
