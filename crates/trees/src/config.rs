//! Tree hyperparameter configuration.

use crate::error::TreesError;

/// How many candidate features a tree node considers when searching splits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaxFeatures {
    /// All features (plain CART).
    All,
    /// `ceil(sqrt(n_features))` — the Random Forest classification default.
    Sqrt,
    /// `max(1, floor(log2(n_features)))`.
    Log2,
    /// A fixed count (clamped to `n_features`).
    Count(usize),
}

impl MaxFeatures {
    /// Resolve to a concrete count for `n_features`.
    pub fn resolve(self, n_features: usize) -> usize {
        let k = match self {
            MaxFeatures::All => n_features,
            MaxFeatures::Sqrt => (n_features as f64).sqrt().ceil() as usize,
            MaxFeatures::Log2 => (n_features as f64).log2().floor() as usize,
            MaxFeatures::Count(k) => k,
        };
        k.clamp(1, n_features.max(1))
    }
}

/// Hyperparameters of a single tree.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreeConfig {
    /// Maximum tree depth (root = depth 0). The paper's prediction model
    /// uses 13.
    pub max_depth: usize,
    /// Minimum samples required to attempt a split.
    pub min_samples_split: usize,
    /// Minimum samples each child must retain.
    pub min_samples_leaf: usize,
    /// Per-node feature subsampling.
    pub max_features: MaxFeatures,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: 13,
            min_samples_split: 2,
            min_samples_leaf: 1,
            max_features: MaxFeatures::All,
        }
    }
}

impl TreeConfig {
    /// Validate the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`TreesError::InvalidParameter`] when a minimum-sample bound
    /// is zero or `max_features` is `Count(0)`.
    pub fn validate(&self) -> Result<(), TreesError> {
        if self.min_samples_split < 2 {
            return Err(TreesError::InvalidParameter {
                message: "min_samples_split must be at least 2".to_string(),
            });
        }
        if self.min_samples_leaf == 0 {
            return Err(TreesError::InvalidParameter {
                message: "min_samples_leaf must be at least 1".to_string(),
            });
        }
        if let MaxFeatures::Count(0) = self.max_features {
            return Err(TreesError::InvalidParameter {
                message: "max_features count must be at least 1".to_string(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_all_and_count() {
        assert_eq!(MaxFeatures::All.resolve(40), 40);
        assert_eq!(MaxFeatures::Count(7).resolve(40), 7);
        assert_eq!(MaxFeatures::Count(99).resolve(40), 40);
    }

    #[test]
    fn resolve_sqrt_and_log2() {
        assert_eq!(MaxFeatures::Sqrt.resolve(36), 6);
        assert_eq!(MaxFeatures::Sqrt.resolve(40), 7); // ceil(6.32)
        assert_eq!(MaxFeatures::Log2.resolve(32), 5);
        assert_eq!(MaxFeatures::Log2.resolve(1), 1); // clamped up
    }

    #[test]
    fn resolve_never_zero() {
        for mf in [MaxFeatures::Sqrt, MaxFeatures::Log2, MaxFeatures::Count(1)] {
            assert_eq!(mf.resolve(1), 1);
        }
    }

    #[test]
    fn default_matches_paper_depth() {
        assert_eq!(TreeConfig::default().max_depth, 13);
        assert!(TreeConfig::default().validate().is_ok());
    }

    #[test]
    fn validate_rejects_degenerate() {
        let mut c = TreeConfig::default();
        c.min_samples_split = 1;
        assert!(c.validate().is_err());
        let mut c = TreeConfig::default();
        c.min_samples_leaf = 0;
        assert!(c.validate().is_err());
        let mut c = TreeConfig::default();
        c.max_features = MaxFeatures::Count(0);
        assert!(c.validate().is_err());
    }
}
