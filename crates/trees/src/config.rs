//! Tree hyperparameter configuration.

use crate::error::TreesError;

/// How a tree searches for the best split of a candidate feature.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitStrategy {
    /// Sort the feature's values at every node and scan every boundary —
    /// O(n log n) per node per feature. The reference engine.
    Exact,
    /// Quantize each feature once per dataset into ≤ 255 bins (see
    /// [`BinnedMatrix`](crate::BinnedMatrix)) and search bin boundaries via
    /// per-node histograms — O(n) accumulation + O(bins) scan, shared
    /// across all trees. Identical to `Exact` on features with ≤ 255
    /// distinct values; thresholds quantized to bin edges otherwise.
    /// The default.
    Histogram,
}

impl Default for SplitStrategy {
    fn default() -> Self {
        SplitStrategy::Histogram
    }
}

impl SplitStrategy {
    /// Parse the `WEFR_SPLIT_STRATEGY` override from an environment lookup
    /// (`"exact"` or `"histogram"`, case-insensitive). Malformed values
    /// warn on stderr and are ignored, mirroring the `WEFR_BENCH_*` policy.
    pub fn from_lookup(get: impl Fn(&str) -> Option<String>) -> Option<SplitStrategy> {
        let raw = get("WEFR_SPLIT_STRATEGY")?;
        match raw.trim().to_ascii_lowercase().as_str() {
            "exact" => Some(SplitStrategy::Exact),
            "histogram" => Some(SplitStrategy::Histogram),
            other => {
                // lint:allow(side-effects) documented contract of the
                // WEFR_SPLIT_STRATEGY knob: malformed values must warn a
                // human, and telemetry may not be installed yet at startup
                eprintln!(
                    "warning: WEFR_SPLIT_STRATEGY={other:?} is not \"exact\" or \
                     \"histogram\"; ignoring"
                );
                None
            }
        }
    }

    /// Parse the `WEFR_SPLIT_STRATEGY` environment override.
    pub fn from_env() -> Option<SplitStrategy> {
        // lint:allow(side-effects) this is the one sanctioned env read for
        // the strategy knob; bins call it once at startup, never mid-run
        SplitStrategy::from_lookup(|name| std::env::var(name).ok())
    }
}

/// How many candidate features a tree node considers when searching splits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaxFeatures {
    /// All features (plain CART).
    All,
    /// `ceil(sqrt(n_features))` — the Random Forest classification default.
    Sqrt,
    /// `max(1, floor(log2(n_features)))`.
    Log2,
    /// A fixed count (clamped to `n_features`).
    Count(usize),
}

impl MaxFeatures {
    /// Resolve to a concrete count for `n_features`.
    pub fn resolve(self, n_features: usize) -> usize {
        let k = match self {
            MaxFeatures::All => n_features,
            MaxFeatures::Sqrt => (n_features as f64).sqrt().ceil() as usize,
            MaxFeatures::Log2 => (n_features as f64).log2().floor() as usize,
            MaxFeatures::Count(k) => k,
        };
        k.clamp(1, n_features.max(1))
    }
}

/// Hyperparameters of a single tree.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreeConfig {
    /// Maximum tree depth (root = depth 0). The paper's prediction model
    /// uses 13.
    pub max_depth: usize,
    /// Minimum samples required to attempt a split.
    pub min_samples_split: usize,
    /// Minimum samples each child must retain.
    pub min_samples_leaf: usize,
    /// Per-node feature subsampling.
    pub max_features: MaxFeatures,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: 13,
            min_samples_split: 2,
            min_samples_leaf: 1,
            max_features: MaxFeatures::All,
        }
    }
}

impl TreeConfig {
    /// Validate the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`TreesError::InvalidParameter`] when a minimum-sample bound
    /// is zero or `max_features` is `Count(0)`.
    pub fn validate(&self) -> Result<(), TreesError> {
        if self.min_samples_split < 2 {
            return Err(TreesError::InvalidParameter {
                message: "min_samples_split must be at least 2".to_string(),
            });
        }
        if self.min_samples_leaf == 0 {
            return Err(TreesError::InvalidParameter {
                message: "min_samples_leaf must be at least 1".to_string(),
            });
        }
        if let MaxFeatures::Count(0) = self.max_features {
            return Err(TreesError::InvalidParameter {
                message: "max_features count must be at least 1".to_string(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_strategy_from_lookup() {
        assert_eq!(
            SplitStrategy::from_lookup(|_| Some("exact".into())),
            Some(SplitStrategy::Exact)
        );
        assert_eq!(
            SplitStrategy::from_lookup(|_| Some(" Histogram ".into())),
            Some(SplitStrategy::Histogram)
        );
        assert_eq!(SplitStrategy::from_lookup(|_| None), None);
        // Malformed values warn and are ignored rather than panicking.
        assert_eq!(SplitStrategy::from_lookup(|_| Some("fast".into())), None);
    }

    #[test]
    fn resolve_all_and_count() {
        assert_eq!(MaxFeatures::All.resolve(40), 40);
        assert_eq!(MaxFeatures::Count(7).resolve(40), 7);
        assert_eq!(MaxFeatures::Count(99).resolve(40), 40);
    }

    #[test]
    fn resolve_sqrt_and_log2() {
        assert_eq!(MaxFeatures::Sqrt.resolve(36), 6);
        assert_eq!(MaxFeatures::Sqrt.resolve(40), 7); // ceil(6.32)
        assert_eq!(MaxFeatures::Log2.resolve(32), 5);
        assert_eq!(MaxFeatures::Log2.resolve(1), 1); // clamped up
    }

    #[test]
    fn resolve_never_zero() {
        for mf in [MaxFeatures::Sqrt, MaxFeatures::Log2, MaxFeatures::Count(1)] {
            assert_eq!(mf.resolve(1), 1);
        }
    }

    #[test]
    fn default_matches_paper_depth() {
        assert_eq!(TreeConfig::default().max_depth, 13);
        assert!(TreeConfig::default().validate().is_ok());
    }

    #[test]
    fn validate_rejects_degenerate() {
        let mut c = TreeConfig::default();
        c.min_samples_split = 1;
        assert!(c.validate().is_err());
        let mut c = TreeConfig::default();
        c.min_samples_leaf = 0;
        assert!(c.validate().is_err());
        let mut c = TreeConfig::default();
        c.max_features = MaxFeatures::Count(0);
        assert!(c.validate().is_err());
    }
}
