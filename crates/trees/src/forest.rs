//! Random Forest classifier: bagged CART trees with per-node feature
//! subsampling, out-of-bag scoring, and both impurity-based and permutation
//! feature importances.
//!
//! The paper uses Random Forest both as its prediction model (100 trees,
//! depth 13) and as one of the five preliminary feature-selection approaches
//! (via feature importance, §II-C).

use crate::binned::BinnedMatrix;
use crate::config::{MaxFeatures, SplitStrategy, TreeConfig};
use crate::error::TreesError;
use crate::tree::RegressionTree;
use rng::rngs::StdRng;
use rng::{RngExt, SeedableRng};
use smart_stats::sampling::{bootstrap_indices, out_of_bag_indices};
use smart_stats::FeatureMatrix;

/// Random Forest hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ForestConfig {
    /// Number of trees (paper: 100).
    pub n_trees: usize,
    /// Per-tree configuration. Defaults to depth 13 with √F features per
    /// node.
    pub tree: TreeConfig,
    /// RNG seed.
    pub seed: u64,
    /// Number of worker threads for training and importance computation
    /// (`None` = available parallelism).
    pub n_threads: Option<usize>,
    /// Split-search engine (default: [`SplitStrategy::Histogram`]).
    pub strategy: SplitStrategy,
}

impl Default for ForestConfig {
    fn default() -> Self {
        ForestConfig {
            n_trees: 100,
            tree: TreeConfig {
                max_features: MaxFeatures::Sqrt,
                ..TreeConfig::default()
            },
            seed: 0,
            n_threads: None,
            strategy: SplitStrategy::default(),
        }
    }
}

/// A trained Random Forest classifier.
#[derive(Debug, Clone, PartialEq)]
pub struct RandomForest {
    trees: Vec<RegressionTree>,
    oob_rows: Vec<Vec<usize>>,
    n_features: usize,
    config: ForestConfig,
}

impl RandomForest {
    /// Train a forest on `data` against boolean `labels`.
    ///
    /// # Errors
    ///
    /// Returns [`TreesError::EmptyTraining`] for an empty matrix,
    /// [`TreesError::LengthMismatch`] when labels don't cover the matrix,
    /// and [`TreesError::InvalidParameter`] for degenerate configuration.
    pub fn fit(
        data: &FeatureMatrix,
        labels: &[bool],
        config: &ForestConfig,
    ) -> Result<Self, TreesError> {
        config.tree.validate()?;
        if config.n_trees == 0 {
            return Err(TreesError::InvalidParameter {
                message: "n_trees must be at least 1".to_string(),
            });
        }
        if data.n_rows() == 0 {
            return Err(TreesError::EmptyTraining);
        }
        if labels.len() != data.n_rows() {
            return Err(TreesError::LengthMismatch {
                features: data.n_rows(),
                targets: labels.len(),
            });
        }
        let targets: Vec<f64> = labels.iter().map(|&l| f64::from(u8::from(l))).collect();

        // Bin once, share read-only across every tree and worker.
        let binned = match config.strategy {
            SplitStrategy::Histogram => Some(BinnedMatrix::from_matrix(data)?),
            SplitStrategy::Exact => None,
        };

        let n_threads = effective_threads(config.n_threads, config.n_trees);
        let results: Vec<Result<(RegressionTree, Vec<usize>), TreesError>> =
            run_indexed_parallel(config.n_trees, n_threads, |tree_idx| {
                let mut rng = StdRng::seed_from_u64(mix_seed(config.seed, tree_idx as u64));
                let bootstrap = bootstrap_indices(&mut rng, data.n_rows())?;
                let oob = out_of_bag_indices(&bootstrap, data.n_rows());
                let tree = match &binned {
                    Some(b) => {
                        RegressionTree::fit_binned(b, &targets, &bootstrap, &config.tree, &mut rng)
                    }
                    None => RegressionTree::fit(data, &targets, &bootstrap, &config.tree, &mut rng),
                }?;
                Ok((tree, oob))
            });

        let (trees, oob_rows) = results
            .into_iter()
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .unzip();
        Ok(RandomForest {
            trees,
            oob_rows,
            n_features: data.n_features(),
            config: *config,
        })
    }

    /// Predicted failure probability for every row (mean over trees).
    ///
    /// # Errors
    ///
    /// Returns [`TreesError::SchemaMismatch`] when the feature count differs
    /// from training.
    pub fn predict_proba(&self, data: &FeatureMatrix) -> Result<Vec<f64>, TreesError> {
        if data.n_features() != self.n_features {
            return Err(TreesError::SchemaMismatch {
                trained: self.n_features,
                given: data.n_features(),
            });
        }
        let mut sums = vec![0.0; data.n_rows()];
        for tree in &self.trees {
            for (row, sum) in sums.iter_mut().enumerate() {
                *sum += tree.predict_row(data, row);
            }
        }
        let n = self.trees.len() as f64;
        Ok(sums.into_iter().map(|s| s / n).collect())
    }

    /// Out-of-bag probability per training row (`None` for rows that were
    /// in-bag for every tree).
    pub fn oob_proba(&self, data: &FeatureMatrix) -> Result<Vec<Option<f64>>, TreesError> {
        if data.n_features() != self.n_features {
            return Err(TreesError::SchemaMismatch {
                trained: self.n_features,
                given: data.n_features(),
            });
        }
        let mut sums = vec![0.0; data.n_rows()];
        let mut counts = vec![0u32; data.n_rows()];
        for (tree, oob) in self.trees.iter().zip(&self.oob_rows) {
            for &row in oob {
                sums[row] += tree.predict_row(data, row);
                counts[row] += 1;
            }
        }
        Ok(sums
            .into_iter()
            .zip(counts)
            .map(|(s, c)| (c > 0).then(|| s / c as f64))
            .collect())
    }

    /// Out-of-bag accuracy at a 0.5 threshold.
    ///
    /// # Errors
    ///
    /// Propagates schema mismatches; returns
    /// [`TreesError::LengthMismatch`] when `labels` don't cover `data`.
    pub fn oob_score(&self, data: &FeatureMatrix, labels: &[bool]) -> Result<f64, TreesError> {
        if labels.len() != data.n_rows() {
            return Err(TreesError::LengthMismatch {
                features: data.n_rows(),
                targets: labels.len(),
            });
        }
        let proba = self.oob_proba(data)?;
        let mut correct = 0usize;
        let mut total = 0usize;
        for (p, &label) in proba.iter().zip(labels) {
            if let Some(p) = p {
                total += 1;
                if (*p >= 0.5) == label {
                    correct += 1;
                }
            }
        }
        Ok(if total == 0 {
            0.0
        } else {
            correct as f64 / total as f64
        })
    }

    /// Mean decrease in impurity (gain) per feature, normalized to sum to 1
    /// (all-zero when the forest made no splits).
    pub fn impurity_importances(&self) -> Vec<f64> {
        let mut totals = vec![0.0; self.n_features];
        for tree in &self.trees {
            for (t, g) in totals.iter_mut().zip(tree.gain_importances()) {
                *t += g;
            }
        }
        normalize(&mut totals);
        totals
    }

    /// Breiman OOB permutation importance: for each tree and feature,
    /// the decrease in OOB accuracy when that feature's values are permuted
    /// within the tree's OOB set, averaged over trees and normalized to sum
    /// to 1 (negative raw scores are clamped to zero first).
    ///
    /// This is the "degree of reduction of classification accuracy after
    /// adding noises to a learning feature" the paper describes (§II-C).
    ///
    /// # Errors
    ///
    /// Propagates schema/length mismatches.
    pub fn permutation_importances(
        &self,
        data: &FeatureMatrix,
        labels: &[bool],
    ) -> Result<Vec<f64>, TreesError> {
        if data.n_features() != self.n_features {
            return Err(TreesError::SchemaMismatch {
                trained: self.n_features,
                given: data.n_features(),
            });
        }
        if labels.len() != data.n_rows() {
            return Err(TreesError::LengthMismatch {
                features: data.n_rows(),
                targets: labels.len(),
            });
        }

        // Histogram-trained trees split at bin-upper thresholds, so permute
        // the quantized columns — exactly a permutation of bin ids. Routing
        // of unpermuted rows is unchanged (value and its bin upper fall on
        // the same side of every threshold), so the baseline matches too.
        let quantized;
        let eval: &FeatureMatrix = match self.config.strategy {
            SplitStrategy::Histogram => {
                quantized = BinnedMatrix::from_matrix(data)?.quantized_matrix();
                &quantized
            }
            SplitStrategy::Exact => data,
        };

        let n_threads = effective_threads(self.config.n_threads, self.trees.len());
        let per_tree: Vec<Vec<f64>> = run_indexed_parallel(self.trees.len(), n_threads, |t| {
            self.tree_permutation_importance(t, eval, labels)
        })
        .into_iter()
        .collect::<Result<Vec<_>, _>>()?;

        let mut totals = vec![0.0; self.n_features];
        for tree_scores in &per_tree {
            for (t, s) in totals.iter_mut().zip(tree_scores) {
                *t += s.max(0.0);
            }
        }
        normalize(&mut totals);
        Ok(totals)
    }

    /// Permutation importance of every feature for one tree's OOB set.
    fn tree_permutation_importance(
        &self,
        tree_idx: usize,
        data: &FeatureMatrix,
        labels: &[bool],
    ) -> Result<Vec<f64>, TreesError> {
        // Cap OOB evaluation size to bound cost on large training sets.
        const MAX_OOB: usize = 512;
        let tree = &self.trees[tree_idx];
        let oob = &self.oob_rows[tree_idx];
        let mut rng = StdRng::seed_from_u64(mix_seed(self.config.seed ^ 0xA5A5, tree_idx as u64));
        let rows: Vec<usize> = if oob.len() > MAX_OOB {
            smart_stats::sampling::sample_without_replacement(&mut rng, oob.len(), MAX_OOB)?
                .into_iter()
                .map(|i| oob[i])
                .collect()
        } else {
            oob.clone()
        };
        if rows.is_empty() {
            return Ok(vec![0.0; self.n_features]);
        }

        // Materialize the OOB submatrix once; permute one column at a time.
        let sub = data.select_rows(&rows)?;
        let sub_labels: Vec<bool> = rows.iter().map(|&r| labels[r]).collect();
        let baseline = accuracy_of_tree(tree, &sub, &sub_labels);

        (0..self.n_features)
            .map(|feature| {
                let mut permuted = sub.column(feature).to_vec();
                shuffle(&mut permuted, &mut rng);
                let mut columns: Vec<Vec<f64>> = (0..sub.n_features())
                    .map(|c| sub.column(c).to_vec())
                    .collect();
                columns[feature] = permuted;
                // `with_missing`: permuting a column with NaN cells must
                // keep them NaN, not fail matrix construction.
                let shuffled = FeatureMatrix::from_columns_with_missing(
                    sub.feature_names().to_vec(),
                    columns,
                )?;
                Ok(baseline - accuracy_of_tree(tree, &shuffled, &sub_labels))
            })
            .collect()
    }

    /// The trained trees.
    pub fn trees(&self) -> &[RegressionTree] {
        &self.trees
    }

    /// Number of features the forest was trained on.
    pub fn n_features(&self) -> usize {
        self.n_features
    }
}

fn accuracy_of_tree(tree: &RegressionTree, data: &FeatureMatrix, labels: &[bool]) -> f64 {
    let correct = (0..data.n_rows())
        .filter(|&r| (tree.predict_row(data, r) >= 0.5) == labels[r])
        .count();
    correct as f64 / data.n_rows().max(1) as f64
}

fn shuffle(xs: &mut [f64], rng: &mut StdRng) {
    for i in (1..xs.len()).rev() {
        let j = rng.random_range(0..=i);
        xs.swap(i, j);
    }
}

fn normalize(xs: &mut [f64]) {
    let total: f64 = xs.iter().sum();
    if total > 0.0 {
        for x in xs.iter_mut() {
            *x /= total;
        }
    }
}

pub(crate) fn mix_seed(seed: u64, index: u64) -> u64 {
    let mut z = seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(index.wrapping_add(1));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^ (z >> 31)
}

pub(crate) fn effective_threads(requested: Option<usize>, work_items: usize) -> usize {
    let available = std::thread::available_parallelism().map_or(4, usize::from);
    requested.unwrap_or(available).clamp(1, work_items.max(1))
}

/// Run `f(0..n)` across `n_threads` OS threads, preserving index order in
/// the result.
pub(crate) fn run_indexed_parallel<T, F>(n: usize, n_threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if n_threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let mut results: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let chunk = n.div_ceil(n_threads);
    std::thread::scope(|scope| {
        for (start, slice) in (0..n).step_by(chunk).zip(results.chunks_mut(chunk)) {
            let f = &f;
            scope.spawn(move || {
                for (offset, slot) in slice.iter_mut().enumerate() {
                    *slot = Some(f(start + offset));
                }
            });
        }
    });
    results
        .into_iter()
        // lint:allow(panic-free) the scoped threads above cover 0..n exactly
        // (step_by(chunk) zipped with chunks_mut(chunk)), so every slot is
        // Some by the time the scope joins
        .map(|r| r.expect("all slots filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rng::RngExt;

    /// Synthetic task: y = (x0 > 0.5), x1 correlated, x2 noise.
    fn make_data(n: usize, seed: u64) -> (FeatureMatrix, Vec<bool>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let x0: f64 = rng.random();
            let x1 = x0 * 0.7 + rng.random::<f64>() * 0.3;
            let x2: f64 = rng.random();
            labels.push(x0 > 0.5);
            rows.push(vec![x0, x1, x2]);
        }
        (
            FeatureMatrix::from_rows(vec!["signal".into(), "proxy".into(), "noise".into()], &rows)
                .unwrap(),
            labels,
        )
    }

    fn small_config() -> ForestConfig {
        ForestConfig {
            n_trees: 30,
            seed: 1,
            ..ForestConfig::default()
        }
    }

    #[test]
    fn learns_simple_threshold_task() {
        let (data, labels) = make_data(400, 2);
        let forest = RandomForest::fit(&data, &labels, &small_config()).unwrap();
        let proba = forest.predict_proba(&data).unwrap();
        let correct = proba
            .iter()
            .zip(&labels)
            .filter(|(p, &l)| (**p >= 0.5) == l)
            .count();
        assert!(correct as f64 / labels.len() as f64 > 0.97);
    }

    #[test]
    fn training_is_deterministic() {
        let (data, labels) = make_data(200, 3);
        let a = RandomForest::fit(&data, &labels, &small_config()).unwrap();
        let b = RandomForest::fit(&data, &labels, &small_config()).unwrap();
        assert_eq!(a, b);
    }

    /// The same task with a slice of the signal column knocked out to NaN:
    /// the histogram engine must train, predict, and score permutation
    /// importances end to end on missing data — deterministically.
    fn make_data_with_missing(n: usize, seed: u64) -> (FeatureMatrix, Vec<bool>) {
        let (data, labels) = make_data(n, seed);
        let mut columns: Vec<Vec<f64>> = (0..data.n_features())
            .map(|c| data.column(c).to_vec())
            .collect();
        for (r, v) in columns[0].iter_mut().enumerate() {
            if r % 5 == 0 {
                *v = f64::NAN;
            }
        }
        (
            FeatureMatrix::from_columns_with_missing(data.feature_names().to_vec(), columns)
                .unwrap(),
            labels,
        )
    }

    #[test]
    fn histogram_forest_handles_missing_values_end_to_end() {
        let (data, labels) = make_data_with_missing(400, 2);
        let config = ForestConfig {
            strategy: SplitStrategy::Histogram,
            ..small_config()
        };
        let forest = RandomForest::fit(&data, &labels, &config).unwrap();
        let again = RandomForest::fit(&data, &labels, &config).unwrap();
        assert_eq!(forest, again, "missing-data training is deterministic");
        let proba = forest.predict_proba(&data).unwrap();
        assert!(proba.iter().all(|p| p.is_finite()));
        // 80% of the signal column survives; accuracy should stay high.
        let correct = proba
            .iter()
            .zip(&labels)
            .filter(|(p, &l)| (**p >= 0.5) == l)
            .count();
        assert!(correct as f64 / labels.len() as f64 > 0.9);
        let imp = forest.permutation_importances(&data, &labels).unwrap();
        assert!(imp.iter().all(|s| s.is_finite()));
    }

    #[test]
    fn exact_forest_degrades_gracefully_on_missing_values() {
        // The exact engine cannot split a feature containing NaN; it must
        // still train (using the remaining features), never panic.
        let (data, labels) = make_data_with_missing(200, 4);
        let config = ForestConfig {
            strategy: SplitStrategy::Exact,
            ..small_config()
        };
        let forest = RandomForest::fit(&data, &labels, &config).unwrap();
        let proba = forest.predict_proba(&data).unwrap();
        assert!(proba.iter().all(|p| p.is_finite()));
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let (data, labels) = make_data(200, 3);
        let mut c1 = small_config();
        c1.n_threads = Some(1);
        let mut c4 = small_config();
        c4.n_threads = Some(4);
        let a = RandomForest::fit(&data, &labels, &c1).unwrap();
        let b = RandomForest::fit(&data, &labels, &c4).unwrap();
        assert_eq!(a.trees(), b.trees());
    }

    #[test]
    fn exact_and_histogram_grow_identical_trees_on_exactly_binned_data() {
        // 200 rows → every feature has ≤ 255 distinct values and bins
        // losslessly; targets are 0/1 so every partial sum is an exact
        // integer. The two engines must then grow bit-identical trees
        // from the same RNG stream.
        let (data, labels) = make_data(200, 17);
        let exact = RandomForest::fit(
            &data,
            &labels,
            &ForestConfig {
                strategy: SplitStrategy::Exact,
                ..small_config()
            },
        )
        .unwrap();
        let hist = RandomForest::fit(
            &data,
            &labels,
            &ForestConfig {
                strategy: SplitStrategy::Histogram,
                ..small_config()
            },
        )
        .unwrap();
        assert_eq!(exact.trees(), hist.trees());
    }

    #[test]
    fn histogram_strategy_learns_quantized_data() {
        // 400 rows of continuous features force the quantile binning path.
        let (data, labels) = make_data(400, 19);
        let forest = RandomForest::fit(
            &data,
            &labels,
            &ForestConfig {
                strategy: SplitStrategy::Histogram,
                ..small_config()
            },
        )
        .unwrap();
        let score = forest.oob_score(&data, &labels).unwrap();
        assert!(score > 0.9, "oob = {score}");
        let perm = forest.permutation_importances(&data, &labels).unwrap();
        assert!(perm[0] > perm[2], "perm = {perm:?}");
    }

    #[test]
    fn oob_score_is_high_on_learnable_task() {
        let (data, labels) = make_data(400, 5);
        let forest = RandomForest::fit(&data, &labels, &small_config()).unwrap();
        let score = forest.oob_score(&data, &labels).unwrap();
        assert!(score > 0.9, "oob = {score}");
    }

    #[test]
    fn importances_rank_signal_over_noise() {
        let (data, labels) = make_data(400, 7);
        let forest = RandomForest::fit(&data, &labels, &small_config()).unwrap();
        let mdi = forest.impurity_importances();
        assert!(mdi[0] > mdi[2], "mdi = {mdi:?}");
        let perm = forest.permutation_importances(&data, &labels).unwrap();
        assert!(perm[0] > perm[2], "perm = {perm:?}");
        assert!(
            perm[0] > perm[1],
            "signal must beat its noisy proxy: {perm:?}"
        );
        // Normalized.
        assert!((mdi.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!((perm.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_empty_and_mismatched_input() {
        let (data, labels) = make_data(50, 9);
        assert!(matches!(
            RandomForest::fit(&data, &labels[..10], &small_config()),
            Err(TreesError::LengthMismatch { .. })
        ));
        let mut c = small_config();
        c.n_trees = 0;
        assert!(RandomForest::fit(&data, &labels, &c).is_err());
    }

    #[test]
    fn predict_rejects_schema_mismatch() {
        let (data, labels) = make_data(50, 11);
        let forest = RandomForest::fit(&data, &labels, &small_config()).unwrap();
        let narrow = FeatureMatrix::from_columns(vec!["x".into()], vec![vec![1.0]]).unwrap();
        assert!(matches!(
            forest.predict_proba(&narrow),
            Err(TreesError::SchemaMismatch { .. })
        ));
    }

    #[test]
    fn single_class_training_predicts_that_class() {
        let (data, _) = make_data(60, 13);
        let labels = vec![false; 60];
        let forest = RandomForest::fit(&data, &labels, &small_config()).unwrap();
        let proba = forest.predict_proba(&data).unwrap();
        assert!(proba.iter().all(|&p| p == 0.0));
    }

    #[test]
    fn run_indexed_parallel_preserves_order() {
        let out = run_indexed_parallel(17, 4, |i| i * i);
        assert_eq!(out, (0..17).map(|i| i * i).collect::<Vec<_>>());
        let out = run_indexed_parallel(3, 1, |i| i);
        assert_eq!(out, vec![0, 1, 2]);
        let out: Vec<usize> = run_indexed_parallel(0, 4, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn mix_seed_spreads_indices() {
        let a = mix_seed(1, 0);
        let b = mix_seed(1, 1);
        assert_ne!(a, b);
        assert_ne!(mix_seed(1, 0), mix_seed(2, 0));
    }
}
