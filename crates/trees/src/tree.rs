//! CART regression tree with per-node feature subsampling.
//!
//! One tree type serves all three learners in this crate: trained on 0/1
//! targets its leaf means are class probabilities (classification /
//! Random Forest); trained on gradients it is a boosting stage whose leaf
//! values the booster re-labels with Newton steps.

use crate::binned::{scan_boundaries, BinnedMatrix, HistScratch};
use crate::config::TreeConfig;
use crate::error::TreesError;
use crate::split::{best_split, Split};
use rng::Rng;
use smart_stats::sampling::sample_without_replacement;
use smart_stats::FeatureMatrix;

/// A node of the tree.
#[derive(Debug, Clone, PartialEq)]
enum Node {
    Leaf {
        value: f64,
        n_samples: usize,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
        /// Where rows with a missing (NaN) feature value are routed — the
        /// gain-better side chosen by the histogram boundary scan.
        nan_left: bool,
    },
}

/// A trained CART regression tree.
#[derive(Debug, Clone, PartialEq)]
pub struct RegressionTree {
    nodes: Vec<Node>,
    n_features: usize,
    gain_by_feature: Vec<f64>,
    splits_by_feature: Vec<u32>,
}

impl RegressionTree {
    /// Fit a tree on the rows `rows` of `data` against `targets` (indexed by
    /// row id, so `targets.len() == data.n_rows()`).
    ///
    /// # Errors
    ///
    /// Returns [`TreesError::EmptyTraining`] when `rows` is empty,
    /// [`TreesError::LengthMismatch`] when targets don't cover the matrix,
    /// and [`TreesError::InvalidParameter`] from config validation.
    pub fn fit<R: Rng + ?Sized>(
        data: &FeatureMatrix,
        targets: &[f64],
        rows: &[usize],
        config: &TreeConfig,
        rng: &mut R,
    ) -> Result<Self, TreesError> {
        config.validate()?;
        if rows.is_empty() {
            return Err(TreesError::EmptyTraining);
        }
        if targets.len() != data.n_rows() {
            return Err(TreesError::LengthMismatch {
                features: data.n_rows(),
                targets: targets.len(),
            });
        }
        let mut tree = RegressionTree {
            nodes: Vec::new(),
            n_features: data.n_features(),
            gain_by_feature: vec![0.0; data.n_features()],
            splits_by_feature: vec![0; data.n_features()],
        };
        let mut rows = rows.to_vec();
        tree.build(data, targets, &mut rows, 0, config, rng)?;
        Ok(tree)
    }

    /// Fit a tree on the rows `rows` of the binned matrix `binned` against
    /// `targets` — the histogram engine ([`SplitStrategy::Histogram`]).
    ///
    /// Split thresholds are bin-upper values, so the trained tree predicts
    /// on ordinary [`FeatureMatrix`] inputs exactly like an exact-trained
    /// tree. When the candidate set covers every feature
    /// ([`MaxFeatures::All`](crate::MaxFeatures::All), as gradient boosting
    /// uses), child histograms are derived from the parent's by the
    /// subtraction trick: only the smaller child is re-accumulated, the
    /// sibling is `parent − smaller`.
    ///
    /// [`SplitStrategy::Histogram`]: crate::SplitStrategy::Histogram
    ///
    /// # Errors
    ///
    /// Same conditions as [`RegressionTree::fit`].
    pub fn fit_binned<R: Rng + ?Sized>(
        binned: &BinnedMatrix,
        targets: &[f64],
        rows: &[usize],
        config: &TreeConfig,
        rng: &mut R,
    ) -> Result<Self, TreesError> {
        config.validate()?;
        if rows.is_empty() {
            return Err(TreesError::EmptyTraining);
        }
        if targets.len() != binned.n_rows() {
            return Err(TreesError::LengthMismatch {
                features: binned.n_rows(),
                targets: targets.len(),
            });
        }
        let mut tree = RegressionTree {
            nodes: Vec::new(),
            n_features: binned.n_features(),
            gain_by_feature: vec![0.0; binned.n_features()],
            splits_by_feature: vec![0; binned.n_features()],
        };
        let mut ctx = BinnedCtx {
            binned,
            targets,
            config,
            scratch: HistScratch::new(),
            part_buf: Vec::with_capacity(rows.len()),
            hists_built: 0,
        };
        let mut rows = rows.to_vec();
        tree.build_binned(&mut ctx, &mut rows, 0, None, rng)?;
        telemetry::counter_add("trees.histograms_built", ctx.hists_built);
        Ok(tree)
    }

    /// Recursively build the subtree for `rows`; returns the node index.
    fn build<R: Rng + ?Sized>(
        &mut self,
        data: &FeatureMatrix,
        targets: &[f64],
        rows: &mut [usize],
        depth: usize,
        config: &TreeConfig,
        rng: &mut R,
    ) -> Result<usize, TreesError> {
        let n = rows.len();
        let mean = rows.iter().map(|&r| targets[r]).sum::<f64>() / n as f64;
        let constant = rows.iter().all(|&r| (targets[r] - mean).abs() < 1e-12);

        if depth >= config.max_depth || n < config.min_samples_split || constant {
            return Ok(self.push_leaf(mean, n));
        }

        // Per-node feature subsampling (the Random Forest ingredient).
        let k = config.max_features.resolve(data.n_features());
        let candidates = sample_without_replacement(rng, data.n_features(), k)?;

        let mut best: Option<(usize, crate::split::Split)> = None;
        let mut pairs: Vec<(f64, f64)> = Vec::with_capacity(n);
        for &feature in &candidates {
            let col = data.column(feature);
            pairs.clear();
            pairs.extend(rows.iter().map(|&r| (col[r], targets[r])));
            if let Some(split) = best_split(&mut pairs, config.min_samples_leaf) {
                if best.as_ref().is_none_or(|(_, b)| split.gain > b.gain) {
                    best = Some((feature, split));
                }
            }
        }

        let Some((feature, split)) = best else {
            return Ok(self.push_leaf(mean, n));
        };

        self.gain_by_feature[feature] += split.gain;
        self.splits_by_feature[feature] += 1;

        // Partition rows in place around the threshold.
        let col = data.column(feature);
        rows.sort_by(|&a, &b| col[a].total_cmp(&col[b]));
        let n_left = rows
            .iter()
            .take_while(|&&r| col[r] <= split.threshold)
            .count();
        debug_assert_eq!(n_left, split.n_left);

        // Reserve this node's slot before recursing so children line up.
        let node_idx = self.nodes.len();
        self.nodes.push(Node::Leaf {
            value: mean,
            n_samples: n,
        });
        let (left_rows, right_rows) = rows.split_at_mut(n_left);
        let left = self.build(data, targets, left_rows, depth + 1, config, rng)?;
        let right = self.build(data, targets, right_rows, depth + 1, config, rng)?;
        self.nodes[node_idx] = Node::Split {
            feature,
            threshold: split.threshold,
            left,
            right,
            nan_left: split.nan_left,
        };
        Ok(node_idx)
    }

    /// Recursively build the subtree for `rows` from per-bin histograms;
    /// returns the node index.
    ///
    /// Mirrors [`Self::build`] decision for decision (leaf conditions,
    /// candidate sampling, tie-breaking), so on data where every feature
    /// bins exactly and target sums carry no rounding (e.g. 0/1 labels) the
    /// two engines grow bit-identical trees from the same RNG.
    fn build_binned<R: Rng + ?Sized>(
        &mut self,
        ctx: &mut BinnedCtx<'_>,
        rows: &mut [usize],
        depth: usize,
        inherited: Option<NodeHists>,
        rng: &mut R,
    ) -> Result<usize, TreesError> {
        let n = rows.len();
        let mean = rows.iter().map(|&r| ctx.targets[r]).sum::<f64>() / n as f64;
        let constant = rows.iter().all(|&r| (ctx.targets[r] - mean).abs() < 1e-12);

        if depth >= ctx.config.max_depth || n < ctx.config.min_samples_split || constant {
            return Ok(self.push_leaf(mean, n));
        }

        let f_total = ctx.binned.n_features();
        let k = ctx.config.max_features.resolve(f_total);
        let candidates = sample_without_replacement(rng, f_total, k)?;
        // With the full feature set in play (gradient boosting's default)
        // node histograms are reusable across levels; under subsampling the
        // candidate set changes per node, so accumulate fresh per feature.
        let full_set = k == f_total;

        let mut best: Option<(usize, Split, usize)> = None;
        let mut consider = |feature: usize, found: Option<(Split, usize)>| {
            if let Some((split, bin)) = found {
                if best.as_ref().is_none_or(|(_, b, _)| split.gain > b.gain) {
                    best = Some((feature, split, bin));
                }
            }
        };

        let mut node_hists: Option<NodeHists> = None;
        if full_set {
            let hists = inherited.unwrap_or_else(|| ctx.build_all_hists(rows));
            for &feature in &candidates {
                let h = &hists.per_feature[feature];
                consider(
                    feature,
                    scan_boundaries(
                        &h.0,
                        &h.1,
                        ctx.binned.bin_uppers(feature),
                        n,
                        ctx.config.min_samples_leaf,
                    ),
                );
            }
            node_hists = Some(hists);
        } else {
            for &feature in &candidates {
                ctx.hists_built += 1;
                let hist = ctx
                    .scratch
                    .accumulate(ctx.binned, feature, rows, ctx.targets);
                consider(
                    feature,
                    scan_boundaries(
                        hist.sum,
                        hist.cnt,
                        ctx.binned.bin_uppers(feature),
                        n,
                        ctx.config.min_samples_leaf,
                    ),
                );
            }
        }

        let Some((feature, split, bin)) = best else {
            return Ok(self.push_leaf(mean, n));
        };

        self.gain_by_feature[feature] += split.gain;
        self.splits_by_feature[feature] += 1;

        // Stable in-place partition around the boundary bin: left rows keep
        // their order at the front, right rows are staged in the shared
        // scratch and copied back — O(n), no sort, no per-node allocation.
        let codes = ctx.binned.codes(feature);
        let bin_code = bin as u8;
        // The reserved NaN code is greater than every boundary bin, so it
        // only goes left when the scan routed missing rows left.
        let nan_code = ctx.binned.nan_code(feature);
        let mut n_left = 0usize;
        ctx.part_buf.clear();
        for i in 0..n {
            let r = rows[i];
            if codes[r] <= bin_code || (split.nan_left && codes[r] == nan_code) {
                rows[n_left] = r;
                n_left += 1;
            } else {
                ctx.part_buf.push(r);
            }
        }
        rows[n_left..].copy_from_slice(&ctx.part_buf);
        debug_assert_eq!(n_left, split.n_left);

        let node_idx = self.nodes.len();
        self.nodes.push(Node::Leaf {
            value: mean,
            n_samples: n,
        });
        let (left_rows, right_rows) = rows.split_at_mut(n_left);

        // Subtraction trick: re-accumulate only the smaller child's
        // histograms; the sibling's are parent − smaller, bin by bin.
        let (left_inherit, right_inherit) = match node_hists {
            Some(parent) if ctx.child_may_split(depth, left_rows.len(), right_rows.len()) => {
                if left_rows.len() <= right_rows.len() {
                    let small = ctx.build_all_hists(left_rows);
                    let large = parent.subtract(&small);
                    (Some(small), Some(large))
                } else {
                    let small = ctx.build_all_hists(right_rows);
                    let large = parent.subtract(&small);
                    (Some(large), Some(small))
                }
            }
            _ => (None, None),
        };

        let left = self.build_binned(ctx, left_rows, depth + 1, left_inherit, rng)?;
        let right = self.build_binned(ctx, right_rows, depth + 1, right_inherit, rng)?;
        self.nodes[node_idx] = Node::Split {
            feature,
            threshold: split.threshold,
            left,
            right,
            nan_left: split.nan_left,
        };
        Ok(node_idx)
    }

    fn push_leaf(&mut self, value: f64, n_samples: usize) -> usize {
        self.nodes.push(Node::Leaf { value, n_samples });
        self.nodes.len() - 1
    }

    /// Index of the leaf that row `row` of `data` falls into.
    ///
    /// # Panics
    ///
    /// Panics if `data` has a different feature count than the training
    /// matrix or `row` is out of bounds.
    pub fn apply(&self, data: &FeatureMatrix, row: usize) -> usize {
        assert_eq!(
            data.n_features(),
            self.n_features,
            "feature count mismatch at prediction"
        );
        let mut idx = 0;
        loop {
            match &self.nodes[idx] {
                Node::Leaf { .. } => return idx,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                    nan_left,
                } => {
                    let v = data.value(row, *feature);
                    idx = if v.is_nan() {
                        // Missing measurement: follow the routing the
                        // boundary scan decided at training time.
                        if *nan_left {
                            *left
                        } else {
                            *right
                        }
                    } else if v <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Predicted value for row `row` of `data`.
    pub fn predict_row(&self, data: &FeatureMatrix, row: usize) -> f64 {
        match &self.nodes[self.apply(data, row)] {
            Node::Leaf { value, .. } => *value,
            // lint:allow(panic-free) apply() only ever returns a leaf index;
            // a Split here means the tree structure itself is corrupt
            Node::Split { .. } => unreachable!("apply returns a leaf"),
        }
    }

    /// Predicted values for every row of `data`.
    ///
    /// # Errors
    ///
    /// Returns [`TreesError::SchemaMismatch`] if the feature count differs
    /// from training.
    pub fn predict(&self, data: &FeatureMatrix) -> Result<Vec<f64>, TreesError> {
        if data.n_features() != self.n_features {
            return Err(TreesError::SchemaMismatch {
                trained: self.n_features,
                given: data.n_features(),
            });
        }
        Ok((0..data.n_rows())
            .map(|r| self.predict_row(data, r))
            .collect())
    }

    /// Overwrite the value of leaf `leaf_idx` (the boosting Newton step).
    ///
    /// # Panics
    ///
    /// Panics if `leaf_idx` is not a leaf.
    pub fn set_leaf_value(&mut self, leaf_idx: usize, value: f64) {
        match &mut self.nodes[leaf_idx] {
            Node::Leaf { value: v, .. } => *v = value,
            // lint:allow(panic-free) documented # Panics contract: callers
            // pass indices straight from apply(), which yields only leaves
            Node::Split { .. } => panic!("node {leaf_idx} is not a leaf"),
        }
    }

    /// Total variance-reduction gain contributed by each feature.
    pub fn gain_importances(&self) -> &[f64] {
        &self.gain_by_feature
    }

    /// Number of splits on each feature.
    pub fn split_counts(&self) -> &[u32] {
        &self.splits_by_feature
    }

    /// Number of features the tree was trained on.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Total number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of leaves.
    pub fn n_leaves(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, Node::Leaf { .. }))
            .count()
    }

    /// Maximum depth of the tree (root = 0; a single leaf has depth 0).
    pub fn depth(&self) -> usize {
        fn walk(nodes: &[Node], idx: usize) -> usize {
            match &nodes[idx] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + walk(nodes, *left).max(walk(nodes, *right)),
            }
        }
        if self.nodes.is_empty() {
            0
        } else {
            walk(&self.nodes, 0)
        }
    }
}

/// Shared state of one binned tree build: the read-only binned matrix plus
/// reusable scratch, so recursion allocates nothing per node.
struct BinnedCtx<'a> {
    binned: &'a BinnedMatrix,
    targets: &'a [f64],
    config: &'a TreeConfig,
    scratch: HistScratch,
    /// Staging area for right-child rows during the stable partition.
    part_buf: Vec<usize>,
    /// Histograms accumulated from rows (subtraction-derived ones excluded).
    hists_built: u64,
}

/// One node's histograms for every feature (`(sums, counts)` per bin) —
/// the unit children inherit under the subtraction trick.
struct NodeHists {
    per_feature: Vec<(Vec<f64>, Vec<u32>)>,
}

impl NodeHists {
    /// The sibling's histograms: `self − other`, bin by bin.
    fn subtract(&self, other: &NodeHists) -> NodeHists {
        let per_feature = self
            .per_feature
            .iter()
            .zip(&other.per_feature)
            .map(|((sum, cnt), (osum, ocnt))| {
                let s: Vec<f64> = sum.iter().zip(osum).map(|(a, b)| a - b).collect();
                let c: Vec<u32> = cnt.iter().zip(ocnt).map(|(a, b)| a - b).collect();
                (s, c)
            })
            .collect();
        NodeHists { per_feature }
    }
}

impl BinnedCtx<'_> {
    /// Accumulate fresh histograms of every feature over `rows`.
    fn build_all_hists(&mut self, rows: &[usize]) -> NodeHists {
        self.hists_built += self.binned.n_features() as u64;
        let per_feature = (0..self.binned.n_features())
            .map(|f| {
                let h = self.scratch.accumulate(self.binned, f, rows, self.targets);
                (h.sum.to_vec(), h.cnt.to_vec())
            })
            .collect();
        NodeHists { per_feature }
    }

    /// Whether a child of a node at `depth` could still be split — i.e.
    /// whether handing down inherited histograms can pay off.
    fn child_may_split(&self, depth: usize, n_left: usize, n_right: usize) -> bool {
        depth + 1 < self.config.max_depth && n_left.max(n_right) >= self.config.min_samples_split
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MaxFeatures;
    use rng::rngs::StdRng;
    use rng::SeedableRng;

    fn xor_data() -> (FeatureMatrix, Vec<f64>) {
        // XOR of two binary features: needs depth 2. Combo counts are
        // deliberately unbalanced — a perfectly balanced XOR has zero gain
        // for every single split and greedy CART cannot enter it.
        let combos = [
            (0.0, 0.0, 14usize),
            (1.0, 0.0, 6),
            (0.0, 1.0, 12),
            (1.0, 1.0, 8),
        ];
        let mut rows = Vec::new();
        let mut targets = Vec::new();
        let mut i = 0u64;
        for (a, b, count) in combos {
            for _ in 0..count {
                // Hash-scrambled noise, decorrelated from the label blocks.
                let noise = (i.wrapping_mul(2_654_435_761) % 97) as f64 * 0.01;
                rows.push(vec![a, b, noise]);
                targets.push(if (a == 1.0) != (b == 1.0) { 1.0 } else { 0.0 });
                i += 1;
            }
        }
        (
            FeatureMatrix::from_rows(vec!["a".into(), "b".into(), "noise".into()], &rows).unwrap(),
            targets,
        )
    }

    fn all_rows(n: usize) -> Vec<usize> {
        (0..n).collect()
    }

    #[test]
    fn learns_xor_exactly() {
        let (data, targets) = xor_data();
        let mut rng = StdRng::seed_from_u64(1);
        let tree = RegressionTree::fit(
            &data,
            &targets,
            &all_rows(data.n_rows()),
            &TreeConfig::default(),
            &mut rng,
        )
        .unwrap();
        let preds = tree.predict(&data).unwrap();
        for (p, t) in preds.iter().zip(&targets) {
            assert!((p - t).abs() < 1e-9, "pred {p} target {t}");
        }
    }

    #[test]
    fn max_depth_zero_is_single_leaf() {
        let (data, targets) = xor_data();
        let mut rng = StdRng::seed_from_u64(1);
        let config = TreeConfig {
            max_depth: 0,
            ..TreeConfig::default()
        };
        let tree =
            RegressionTree::fit(&data, &targets, &all_rows(data.n_rows()), &config, &mut rng)
                .unwrap();
        assert_eq!(tree.n_nodes(), 1);
        assert_eq!(tree.depth(), 0);
        // The single leaf predicts the global positive rate (18/40).
        let positives = targets.iter().sum::<f64>();
        let p = tree.predict_row(&data, 0);
        assert!((p - positives / targets.len() as f64).abs() < 1e-9);
    }

    #[test]
    fn depth_limit_is_respected() {
        let (data, targets) = xor_data();
        for max_depth in [1, 2, 3] {
            let mut rng = StdRng::seed_from_u64(2);
            let config = TreeConfig {
                max_depth,
                ..TreeConfig::default()
            };
            let tree =
                RegressionTree::fit(&data, &targets, &all_rows(data.n_rows()), &config, &mut rng)
                    .unwrap();
            assert!(tree.depth() <= max_depth);
        }
    }

    #[test]
    fn importances_ignore_noise_feature() {
        let (data, targets) = xor_data();
        let mut rng = StdRng::seed_from_u64(3);
        let tree = RegressionTree::fit(
            &data,
            &targets,
            &all_rows(data.n_rows()),
            &TreeConfig::default(),
            &mut rng,
        )
        .unwrap();
        let gains = tree.gain_importances();
        assert!(gains[0] > 0.0 && gains[1] > 0.0);
        // All informative splits should land on a and b; noise may appear but
        // with negligible gain.
        assert!(gains[2] < 0.05 * (gains[0] + gains[1]));
    }

    #[test]
    fn empty_rows_is_error() {
        let (data, targets) = xor_data();
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(
            RegressionTree::fit(&data, &targets, &[], &TreeConfig::default(), &mut rng),
            Err(TreesError::EmptyTraining)
        );
    }

    #[test]
    fn target_length_mismatch_is_error() {
        let (data, _) = xor_data();
        let mut rng = StdRng::seed_from_u64(4);
        let short = vec![0.0; 3];
        assert!(matches!(
            RegressionTree::fit(&data, &short, &[0, 1], &TreeConfig::default(), &mut rng),
            Err(TreesError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn predict_rejects_schema_mismatch() {
        let (data, targets) = xor_data();
        let mut rng = StdRng::seed_from_u64(5);
        let tree = RegressionTree::fit(
            &data,
            &targets,
            &all_rows(data.n_rows()),
            &TreeConfig::default(),
            &mut rng,
        )
        .unwrap();
        let narrow = FeatureMatrix::from_columns(vec!["a".into()], vec![vec![0.0, 1.0]]).unwrap();
        assert!(matches!(
            tree.predict(&narrow),
            Err(TreesError::SchemaMismatch { .. })
        ));
    }

    #[test]
    fn leaf_relabeling_changes_predictions() {
        let (data, targets) = xor_data();
        let mut rng = StdRng::seed_from_u64(6);
        let mut tree = RegressionTree::fit(
            &data,
            &targets,
            &all_rows(data.n_rows()),
            &TreeConfig::default(),
            &mut rng,
        )
        .unwrap();
        let leaf = tree.apply(&data, 0);
        tree.set_leaf_value(leaf, 42.0);
        assert_eq!(tree.predict_row(&data, 0), 42.0);
    }

    #[test]
    fn constant_target_yields_single_leaf() {
        let data =
            FeatureMatrix::from_columns(vec!["x".into()], vec![vec![1.0, 2.0, 3.0, 4.0]]).unwrap();
        let targets = vec![7.0; 4];
        let mut rng = StdRng::seed_from_u64(7);
        let tree = RegressionTree::fit(
            &data,
            &targets,
            &[0, 1, 2, 3],
            &TreeConfig::default(),
            &mut rng,
        )
        .unwrap();
        assert_eq!(tree.n_nodes(), 1);
        assert_eq!(tree.predict_row(&data, 2), 7.0);
    }

    #[test]
    fn subset_rows_are_respected() {
        // Train only on rows where target == 0; prediction must be 0.
        let (data, targets) = xor_data();
        let zero_rows: Vec<usize> = (0..data.n_rows()).filter(|&r| targets[r] == 0.0).collect();
        let mut rng = StdRng::seed_from_u64(8);
        let tree = RegressionTree::fit(
            &data,
            &targets,
            &zero_rows,
            &TreeConfig::default(),
            &mut rng,
        )
        .unwrap();
        assert_eq!(tree.n_nodes(), 1);
        assert_eq!(tree.predict_row(&data, 0), 0.0);
    }

    #[test]
    fn feature_subsampling_still_learns() {
        let (data, targets) = xor_data();
        let config = TreeConfig {
            max_features: MaxFeatures::Count(2),
            ..TreeConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(9);
        let tree =
            RegressionTree::fit(&data, &targets, &all_rows(data.n_rows()), &config, &mut rng)
                .unwrap();
        // With 2 of 3 features per node it may need more depth, but the fit
        // must still reduce error well below the 0.25 variance baseline.
        let preds = tree.predict(&data).unwrap();
        let mse: f64 = preds
            .iter()
            .zip(&targets)
            .map(|(p, t)| (p - t) * (p - t))
            .sum::<f64>()
            / targets.len() as f64;
        assert!(mse < 0.1, "mse = {mse}");
    }

    #[test]
    fn n_leaves_counts() {
        let (data, targets) = xor_data();
        let mut rng = StdRng::seed_from_u64(10);
        let tree = RegressionTree::fit(
            &data,
            &targets,
            &all_rows(data.n_rows()),
            &TreeConfig::default(),
            &mut rng,
        )
        .unwrap();
        assert_eq!(tree.n_leaves() + tree.n_leaves() - 1, tree.n_nodes());
    }
}
