//! Histogram-binned feature matrix and O(n) split search.
//!
//! The exact engine re-sorts a freshly allocated `(value, target)` pair vec
//! for every candidate feature at every node — O(nodes × features ×
//! n log n) with per-node allocation. Binning quantizes each feature
//! **once per dataset** into at most [`DEFAULT_MAX_BINS`] ordered bins
//! (`u8` codes), after which a node's split search is one O(n) pass
//! accumulating per-bin target sums/counts plus an O(bins) boundary scan —
//! the LightGBM-style trick. The one [`BinnedMatrix`] is shared, read-only,
//! across all trees of a forest or booster.
//!
//! Two binning paths per feature:
//!
//! * **Exact** (≤ `max_bins` distinct values): every distinct value gets its
//!   own bin, so histogram split search returns *identical* gains,
//!   thresholds, and partitions to the exact engine.
//! * **Quantile** (more distinct values than bins): bin edges are placed at
//!   equally spaced ranks of the sorted column. Thresholds are the largest
//!   *observed* value of each bin, so `value <= threshold` routing matches
//!   the exact engine's left-boundary semantics on every training row.
//!
//! Bins are per-dataset, so training stays deterministic and independent of
//! worker count: every tree reads the same codes and the same thresholds.
//!
//! **Missing values** (NaN cells, from missing-attribute fleets — DESIGN.md
//! §11): each feature with missing cells gets one *reserved NaN bin* with
//! code `uppers.len()`, past every finite bin. The boundary scan evaluates
//! every finite boundary twice — missing rows routed left, missing rows
//! routed right — and keeps whichever side gains more ("missing goes to the
//! gain-better side"), ties resolving to left. Features without missing
//! cells take exactly the pre-NaN code path, bit for bit.

use crate::error::TreesError;
use crate::split::Split;
use smart_stats::FeatureMatrix;

/// Default (and maximum) number of bins per feature. 255 keeps codes in a
/// `u8` and matches the LightGBM default.
pub const DEFAULT_MAX_BINS: usize = 255;

/// A feature matrix quantized to per-feature `u8` bin codes, built once per
/// dataset and shared by every tree trained under
/// [`SplitStrategy::Histogram`](crate::SplitStrategy::Histogram).
#[derive(Debug, Clone, PartialEq)]
pub struct BinnedMatrix {
    names: Vec<String>,
    /// `codes[feature][row]` — bin id of the row's value, `0..n_bins`.
    codes: Vec<Vec<u8>>,
    /// `uppers[feature][bin]` — the largest observed value in the bin
    /// (strictly increasing per feature). Doubles as the split threshold
    /// for the boundary after the bin.
    uppers: Vec<Vec<f64>>,
    /// Per-feature flag: true when every distinct value got its own bin
    /// (histogram splits are then exactly the exact engine's splits).
    exact: Vec<bool>,
    /// Per-feature flag: true when the column holds NaN cells, which all
    /// carry the reserved bin code `uppers[feature].len()`.
    missing: Vec<bool>,
    n_rows: usize,
}

impl BinnedMatrix {
    /// Bin every column of `data` into at most [`DEFAULT_MAX_BINS`] bins.
    ///
    /// NaN cells (missing measurements) are accepted and assigned the
    /// feature's reserved NaN bin.
    ///
    /// # Errors
    ///
    /// Returns [`TreesError::NonFinite`] if a column contains an infinite
    /// value (defense in depth — [`FeatureMatrix`] construction already
    /// rejects them).
    pub fn from_matrix(data: &FeatureMatrix) -> Result<Self, TreesError> {
        BinnedMatrix::with_max_bins(data, DEFAULT_MAX_BINS)
    }

    /// Bin every column of `data` into at most `max_bins` bins
    /// (clamped to `2..=255` so codes fit a `u8`).
    ///
    /// # Errors
    ///
    /// Returns [`TreesError::NonFinite`] for infinite cells (NaN marks a
    /// missing measurement and gets the reserved NaN bin instead).
    pub fn with_max_bins(data: &FeatureMatrix, max_bins: usize) -> Result<Self, TreesError> {
        let max_bins = max_bins.clamp(2, DEFAULT_MAX_BINS);
        let span = telemetry::span!(
            "trees/bin",
            rows = data.n_rows(),
            features = data.n_features(),
            max_bins = max_bins,
        );
        let mut codes = Vec::with_capacity(data.n_features());
        let mut uppers = Vec::with_capacity(data.n_features());
        let mut exact = Vec::with_capacity(data.n_features());
        let mut missing = Vec::with_capacity(data.n_features());
        for feature in 0..data.n_features() {
            let col = bin_column(data.column(feature), max_bins)
                .map_err(|_| TreesError::NonFinite { feature })?;
            codes.push(col.codes);
            uppers.push(col.uppers);
            exact.push(col.exact);
            missing.push(col.missing);
        }
        let n_exact = exact.iter().filter(|&&e| e).count();
        span.record("exact_features", n_exact);
        span.record("quantized_features", exact.len() - n_exact);
        telemetry::counter_add("trees.bin.matrices", 1);
        telemetry::counter_add("trees.bin.features_exact", n_exact as u64);
        telemetry::counter_add(
            "trees.bin.features_quantized",
            (exact.len() - n_exact) as u64,
        );
        Ok(BinnedMatrix {
            names: data.feature_names().to_vec(),
            codes,
            uppers,
            exact,
            missing,
            n_rows: data.n_rows(),
        })
    }

    /// Number of samples (rows).
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of learning features (columns).
    pub fn n_features(&self) -> usize {
        self.codes.len()
    }

    /// Feature names, in column order.
    pub fn feature_names(&self) -> &[String] {
        &self.names
    }

    /// Bin codes of feature `feature` across all rows.
    ///
    /// # Panics
    ///
    /// Panics if `feature` is out of bounds.
    pub fn codes(&self, feature: usize) -> &[u8] {
        &self.codes[feature]
    }

    /// Per-bin upper values (split thresholds) of feature `feature`.
    ///
    /// # Panics
    ///
    /// Panics if `feature` is out of bounds.
    pub fn bin_uppers(&self, feature: usize) -> &[f64] {
        &self.uppers[feature]
    }

    /// Number of histogram bins of feature `feature`, including the
    /// reserved NaN bin when the feature has missing cells.
    ///
    /// # Panics
    ///
    /// Panics if `feature` is out of bounds.
    pub fn n_bins(&self, feature: usize) -> usize {
        self.uppers[feature].len() + usize::from(self.missing[feature])
    }

    /// Whether feature `feature` was binned losslessly (one bin per
    /// distinct value, no missing cells).
    ///
    /// # Panics
    ///
    /// Panics if `feature` is out of bounds.
    pub fn is_exact(&self, feature: usize) -> bool {
        self.exact[feature]
    }

    /// Whether feature `feature` has missing (NaN) cells and therefore a
    /// reserved NaN bin.
    ///
    /// # Panics
    ///
    /// Panics if `feature` is out of bounds.
    pub fn has_missing(&self, feature: usize) -> bool {
        self.missing[feature]
    }

    /// The reserved NaN bin code of feature `feature`: one past the last
    /// finite bin. Only carried by rows when
    /// [`has_missing`](Self::has_missing) is true.
    ///
    /// # Panics
    ///
    /// Panics if `feature` is out of bounds.
    pub fn nan_code(&self, feature: usize) -> u8 {
        // uppers.len() <= DEFAULT_MAX_BINS = 255.
        self.uppers[feature].len() as u8
    }

    /// The quantized matrix: every value replaced by its bin's upper value.
    ///
    /// Routing any quantized row through a histogram-trained tree is
    /// identical to routing the original row (thresholds are bin uppers),
    /// and permuting a quantized column is exactly a permutation of bin
    /// ids — the form the binned permutation importance uses.
    pub fn quantized_matrix(&self) -> FeatureMatrix {
        let columns: Vec<Vec<f64>> = (0..self.n_features())
            .map(|f| {
                let uppers = &self.uppers[f];
                // The reserved NaN code is past the last upper: map it back
                // to NaN so missing cells stay missing after quantization.
                self.codes[f]
                    .iter()
                    .map(|&c| uppers.get(c as usize).copied().unwrap_or(f64::NAN))
                    .collect()
            })
            .collect();
        FeatureMatrix::from_columns_with_missing(self.names.clone(), columns)
            // lint:allow(panic-free) bin uppers are copies of values the
            // FeatureMatrix constructor already validated as non-infinite
            .expect("binned values are never infinite by construction")
    }

    /// Histogram best split of one feature over `rows` — the O(n) + O(bins)
    /// counterpart of [`best_split`](crate::split::best_split).
    ///
    /// Equivalent to running the exact search on the quantized column: on a
    /// losslessly binned feature ([`is_exact`](Self::is_exact)) the result
    /// is identical to the exact engine's; on a quantile-binned feature the
    /// candidate boundaries are a subset of the exact engine's, so the
    /// returned gain never exceeds the exact gain.
    ///
    /// # Panics
    ///
    /// Panics if `feature` or any row index is out of bounds.
    pub fn best_split(
        &self,
        feature: usize,
        rows: &[usize],
        targets: &[f64],
        min_samples_leaf: usize,
    ) -> Option<Split> {
        let mut scratch = HistScratch::new();
        let hist = scratch.accumulate(self, feature, rows, targets);
        scan_boundaries(
            &hist.sum,
            &hist.cnt,
            &self.uppers[feature],
            rows.len(),
            min_samples_leaf,
        )
        .map(|(split, _)| split)
    }
}

/// One column's quantization: codes, finite-bin uppers, and flags.
pub(crate) struct BinnedColumn {
    pub codes: Vec<u8>,
    pub uppers: Vec<f64>,
    pub exact: bool,
    pub missing: bool,
}

/// Quantize one column.
///
/// Split out of [`BinnedMatrix::with_max_bins`] so the NaN/infinity policy
/// is unit-testable: a `FeatureMatrix` built with
/// [`FeatureMatrix::from_columns_with_missing`] *can* hold NaN cells
/// (missing measurements), which land in the reserved bin `uppers.len()`;
/// infinities are still rejected here as defense in depth.
pub(crate) fn bin_column(values: &[f64], max_bins: usize) -> Result<BinnedColumn, TreesError> {
    if values.iter().any(|v| v.is_infinite()) {
        return Err(TreesError::NonFinite { feature: 0 });
    }
    let mut sorted: Vec<f64> = values.iter().copied().filter(|v| !v.is_nan()).collect();
    let missing = sorted.len() < values.len();
    sorted.sort_by(f64::total_cmp);

    let mut distinct = sorted.clone();
    distinct.dedup();
    let n_distinct = distinct.len();

    let n = sorted.len();
    let uppers: Vec<f64> = if n_distinct <= max_bins {
        distinct
    } else {
        // Quantile edges: the value at rank ceil(i·n/max_bins) − 1 for
        // i = 1..=max_bins, deduplicated. Equal values always share a bin.
        let mut edges: Vec<f64> = (1..=max_bins)
            .map(|i| sorted[i * n / max_bins - 1])
            .collect();
        edges.dedup();
        // The last edge is sorted[n-1], the column maximum, so every value
        // lands in a bin.
        edges
    };

    // A feature with missing cells is never "exact": the exact engine has
    // no ordering for NaN, so histogram splits have no exact counterpart.
    let exact = uppers.len() == n_distinct && !missing;
    // uppers.len() <= max_bins <= 255, so the reserved
    // NaN code uppers.len() fits a u8 too.
    let nan_code = uppers.len() as u8;
    let codes: Vec<u8> = values
        .iter()
        .map(|&v| {
            if v.is_nan() {
                nan_code
            } else {
                uppers.partition_point(|&u| u < v) as u8
            }
        })
        .collect();
    Ok(BinnedColumn {
        codes,
        uppers,
        exact,
        missing,
    })
}

/// Reusable per-feature histogram scratch (sums and counts per bin), sized
/// for the maximum bin count so one allocation serves a whole tree.
#[derive(Debug)]
pub(crate) struct HistScratch {
    sum: Vec<f64>,
    cnt: Vec<u32>,
}

/// One feature's histogram over a node's rows, borrowed from the scratch.
pub(crate) struct Histogram<'a> {
    pub sum: &'a [f64],
    pub cnt: &'a [u32],
}

impl HistScratch {
    pub(crate) fn new() -> Self {
        // One extra slot for the reserved NaN bin of missing-value features.
        HistScratch {
            sum: vec![0.0; DEFAULT_MAX_BINS + 1],
            cnt: vec![0; DEFAULT_MAX_BINS + 1],
        }
    }

    /// Accumulate per-bin target sums/counts of `feature` over `rows`.
    ///
    /// The scratch is zeroed up to the feature's bin count on entry, so it
    /// can be reused across features and nodes without re-allocation.
    pub(crate) fn accumulate<'a>(
        &'a mut self,
        binned: &BinnedMatrix,
        feature: usize,
        rows: &[usize],
        targets: &[f64],
    ) -> Histogram<'a> {
        let n_bins = binned.n_bins(feature);
        self.sum[..n_bins].fill(0.0);
        self.cnt[..n_bins].fill(0);
        let codes = binned.codes(feature);
        for &r in rows {
            let b = codes[r] as usize;
            self.sum[b] += targets[r];
            self.cnt[b] += 1;
        }
        Histogram {
            sum: &self.sum[..n_bins],
            cnt: &self.cnt[..n_bins],
        }
    }
}

/// Scan the bin boundaries of one histogram for the best variance-reduction
/// split. Returns the split and the boundary bin index (rows with
/// `code <= bin` go left, missing rows go to the split's `nan_left` side).
///
/// When `sum`/`cnt` carry one slot past `uppers.len()`, that slot is the
/// feature's reserved NaN bin: every finite boundary is then evaluated with
/// the missing rows on the left *and* on the right, and the better-gaining
/// variant wins (ties go left). Without missing rows the scan mirrors the
/// exact engine's exactly: boundaries in ascending value order, only after
/// non-empty bins (the histogram analogue of "can't split between equal
/// values"), under the same `min_samples_leaf` and strictly-greater gain
/// rules — so ties resolve to the same boundary the exact engine picks.
pub(crate) fn scan_boundaries(
    sum: &[f64],
    cnt: &[u32],
    uppers: &[f64],
    n: usize,
    min_samples_leaf: usize,
) -> Option<(Split, usize)> {
    if n < 2 * min_samples_leaf || sum.len() < 2 {
        return None;
    }
    let (nan_sum, nan_cnt) = if sum.len() > uppers.len() {
        (sum[uppers.len()], cnt[uppers.len()] as usize)
    } else {
        (0.0, 0)
    };
    let total_sum: f64 = sum.iter().sum();
    let base = total_sum * total_sum / n as f64;

    // With missing rows the boundary after the last finite bin is a real
    // candidate too (all finite left, NaN right); without them it would
    // leave the right side empty, so it is excluded as before.
    let last_boundary = if nan_cnt > 0 {
        uppers.len()
    } else {
        uppers.len().saturating_sub(1)
    };
    let mut best: Option<(Split, usize)> = None;
    let mut left_sum = 0.0;
    let mut left_cnt = 0usize;
    for b in 0..last_boundary {
        left_sum += sum[b];
        left_cnt += cnt[b] as usize;
        if cnt[b] == 0 {
            continue;
        }
        // Missing-left first: on equal gains the strictly-greater rule
        // keeps the first variant, so ties route missing rows left — and
        // with no missing rows both variants are identical, making this
        // loop bit-for-bit the pre-NaN scan.
        for (nl, sl, nan_left) in [
            (left_cnt + nan_cnt, left_sum + nan_sum, true),
            (left_cnt, left_sum, false),
        ] {
            if nl < min_samples_leaf || n - nl < min_samples_leaf {
                continue;
            }
            let sr = total_sum - sl;
            let gain = sl * sl / nl as f64 + sr * sr / (n - nl) as f64 - base;
            if gain > best.as_ref().map_or(1e-12, |(s, _)| s.gain) {
                best = Some((
                    Split {
                        threshold: uppers[b],
                        gain,
                        n_left: nl,
                        nan_left,
                    },
                    b,
                ));
            }
        }
        if left_cnt == n - nan_cnt {
            break;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix(columns: Vec<Vec<f64>>) -> FeatureMatrix {
        let names = (0..columns.len()).map(|i| format!("f{i}")).collect();
        FeatureMatrix::from_columns(names, columns).unwrap()
    }

    #[test]
    fn low_cardinality_column_bins_exactly() {
        let m = matrix(vec![vec![5.0, 1.0, 3.0, 1.0, 5.0]]);
        let b = BinnedMatrix::from_matrix(&m).unwrap();
        assert!(b.is_exact(0));
        assert_eq!(b.n_bins(0), 3);
        assert_eq!(b.bin_uppers(0), &[1.0, 3.0, 5.0]);
        assert_eq!(b.codes(0), &[2, 0, 1, 0, 2]);
    }

    #[test]
    fn high_cardinality_column_is_quantized() {
        let values: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let m = matrix(vec![values.clone()]);
        let b = BinnedMatrix::from_matrix(&m).unwrap();
        assert!(!b.is_exact(0));
        assert_eq!(b.n_bins(0), DEFAULT_MAX_BINS);
        // Uppers are strictly increasing observed values ending at the max.
        let uppers = b.bin_uppers(0);
        assert!(uppers.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(*uppers.last().unwrap(), 999.0);
        // Codes are consistent with the threshold semantics: value <=
        // uppers[code], and value > uppers[code - 1].
        for (i, &v) in values.iter().enumerate() {
            let c = b.codes(0)[i] as usize;
            assert!(v <= uppers[c]);
            if c > 0 {
                assert!(v > uppers[c - 1]);
            }
        }
    }

    #[test]
    fn equal_values_share_a_bin_after_quantization() {
        // 400 distinct values (forcing the quantile path), each repeated
        // twice, with a heavy tie group at zero.
        let mut values = vec![0.0; 100];
        for i in 0..400 {
            values.push(i as f64);
            values.push(i as f64);
        }
        let m = matrix(vec![values.clone()]);
        let b = BinnedMatrix::from_matrix(&m).unwrap();
        assert!(!b.is_exact(0));
        let codes = b.codes(0);
        for i in 0..values.len() {
            for j in 0..values.len() {
                if values[i] == values[j] {
                    assert_eq!(codes[i], codes[j]);
                }
            }
        }
    }

    #[test]
    fn bin_column_reserves_nan_bin_and_rejects_infinite() {
        // NaN marks a missing measurement: accepted, coded one past the
        // last finite bin, and the column loses its "exact" status.
        let col = bin_column(&[1.0, f64::NAN, 2.0], 255).unwrap();
        assert!(col.missing);
        assert!(!col.exact);
        assert_eq!(col.uppers, vec![1.0, 2.0]);
        assert_eq!(col.codes, vec![0, 2, 1]);
        // Infinities are still arithmetic accidents, never telemetry.
        assert!(matches!(
            bin_column(&[1.0, f64::INFINITY], 255),
            Err(TreesError::NonFinite { .. })
        ));
        assert!(matches!(
            bin_column(&[1.0, f64::NEG_INFINITY], 255),
            Err(TreesError::NonFinite { .. })
        ));
    }

    fn matrix_with_missing(columns: Vec<Vec<f64>>) -> FeatureMatrix {
        let names = (0..columns.len()).map(|i| format!("f{i}")).collect();
        FeatureMatrix::from_columns_with_missing(names, columns).unwrap()
    }

    #[test]
    fn missing_cells_do_not_disturb_finite_binning() {
        // The finite bins and codes must be exactly those of the same
        // column with its NaN rows deleted.
        let m = matrix_with_missing(vec![vec![5.0, f64::NAN, 1.0, 3.0, f64::NAN, 5.0]]);
        let b = BinnedMatrix::from_matrix(&m).unwrap();
        assert!(b.has_missing(0));
        assert!(!b.is_exact(0));
        assert_eq!(b.bin_uppers(0), &[1.0, 3.0, 5.0]);
        assert_eq!(b.nan_code(0), 3);
        assert_eq!(b.n_bins(0), 4);
        assert_eq!(b.codes(0), &[2, 3, 0, 1, 3, 2]);
    }

    #[test]
    fn missing_routes_to_the_gain_better_side() {
        // Finite values separate targets at 2.0; the NaN rows all carry
        // target 1.0, so grouping them with the high (right) side gains
        // more than the left side. The scan must pick nan_left = false.
        let m = matrix_with_missing(vec![vec![1.0, 2.0, 10.0, 11.0, f64::NAN, f64::NAN]]);
        let targets = [0.0, 0.0, 1.0, 1.0, 1.0, 1.0];
        let b = BinnedMatrix::from_matrix(&m).unwrap();
        let s = b.best_split(0, &[0, 1, 2, 3, 4, 5], &targets, 1).unwrap();
        assert_eq!(s.threshold, 2.0);
        assert!(!s.nan_left);
        assert_eq!(s.n_left, 2);
        assert!((s.gain - 1.333_333_333_333_333_4).abs() < 1e-9);

        // Mirror image: NaN rows carry target 0.0 — now missing-left wins.
        let targets = [0.0, 0.0, 1.0, 1.0, 0.0, 0.0];
        let s = b.best_split(0, &[0, 1, 2, 3, 4, 5], &targets, 1).unwrap();
        assert_eq!(s.threshold, 2.0);
        assert!(s.nan_left);
        assert_eq!(s.n_left, 4);
    }

    #[test]
    fn all_finite_left_nan_right_boundary_is_considered() {
        // The only signal is missingness itself: finite rows are target 0,
        // missing rows target 1. The winning split must put every finite
        // row left of the last finite upper and the NaN rows right.
        let m = matrix_with_missing(vec![vec![1.0, 2.0, 3.0, f64::NAN, f64::NAN]]);
        let targets = [0.0, 0.0, 0.0, 1.0, 1.0];
        let b = BinnedMatrix::from_matrix(&m).unwrap();
        let s = b.best_split(0, &[0, 1, 2, 3, 4], &targets, 1).unwrap();
        assert_eq!(s.threshold, 3.0);
        assert!(!s.nan_left);
        assert_eq!(s.n_left, 3);
        // Perfect separation of [0,0,0,1,1]: total SSE 1.2 fully removed.
        assert!((s.gain - 1.2).abs() < 1e-12);
    }

    #[test]
    fn missing_tie_routes_left() {
        // NaN rows split their targets evenly, so both routings gain the
        // same; the deterministic tie rule keeps them left.
        let m = matrix_with_missing(vec![vec![1.0, 2.0, 10.0, 11.0, f64::NAN, f64::NAN]]);
        let targets = [0.0, 0.0, 1.0, 1.0, 0.5, 0.5];
        let b = BinnedMatrix::from_matrix(&m).unwrap();
        let s = b.best_split(0, &[0, 1, 2, 3, 4, 5], &targets, 1).unwrap();
        assert!(s.nan_left);
    }

    #[test]
    fn quantized_matrix_round_trips_missing_cells() {
        let m = matrix_with_missing(vec![vec![5.0, f64::NAN, 3.0]]);
        let q = BinnedMatrix::from_matrix(&m).unwrap().quantized_matrix();
        assert_eq!(q.value(0, 0), 5.0);
        assert!(q.value(1, 0).is_nan());
        assert_eq!(q.value(2, 0), 3.0);
    }

    #[test]
    fn all_missing_column_is_unsplittable() {
        let m = matrix_with_missing(vec![vec![f64::NAN, f64::NAN, f64::NAN]]);
        let b = BinnedMatrix::from_matrix(&m).unwrap();
        assert_eq!(b.n_bins(0), 1);
        assert!(b.best_split(0, &[0, 1, 2], &[0.0, 1.0, 0.0], 1).is_none());
    }

    #[test]
    fn quantized_matrix_preserves_exact_columns() {
        let m = matrix(vec![vec![5.0, 1.0, 3.0], vec![0.5, 0.25, 0.75]]);
        let b = BinnedMatrix::from_matrix(&m).unwrap();
        assert_eq!(b.quantized_matrix(), m);
    }

    #[test]
    fn histogram_split_matches_exact_on_low_cardinality() {
        let m = matrix(vec![vec![1.0, 2.0, 10.0, 11.0]]);
        let targets = [0.0, 0.0, 1.0, 1.0];
        let b = BinnedMatrix::from_matrix(&m).unwrap();
        let s = b.best_split(0, &[0, 1, 2, 3], &targets, 1).unwrap();
        assert_eq!(s.threshold, 2.0);
        assert_eq!(s.n_left, 2);
        assert!((s.gain - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_split_respects_subset_rows() {
        let m = matrix(vec![vec![1.0, 2.0, 10.0, 11.0]]);
        let targets = [0.0, 1.0, 1.0, 0.0];
        let b = BinnedMatrix::from_matrix(&m).unwrap();
        // Only rows {0, 2}: a clean 0-vs-1 split at threshold 1.
        let s = b.best_split(0, &[0, 2], &targets, 1).unwrap();
        assert_eq!(s.threshold, 1.0);
        assert_eq!(s.n_left, 1);
    }

    #[test]
    fn constant_feature_has_no_split() {
        let m = matrix(vec![vec![7.0, 7.0, 7.0]]);
        let b = BinnedMatrix::from_matrix(&m).unwrap();
        assert!(b.best_split(0, &[0, 1, 2], &[0.0, 1.0, 0.0], 1).is_none());
    }

    #[test]
    fn min_samples_leaf_respected() {
        let m = matrix(vec![vec![1.0, 2.0, 3.0, 4.0]]);
        let targets = [0.0, 1.0, 1.0, 1.0];
        let b = BinnedMatrix::from_matrix(&m).unwrap();
        if let Some(s) = b.best_split(0, &[0, 1, 2, 3], &targets, 2) {
            assert!(s.n_left >= 2 && 4 - s.n_left >= 2);
        }
        assert!(b.best_split(0, &[0, 1], &targets, 2).is_none());
    }
}
