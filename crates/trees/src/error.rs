//! Error type for tree learners.

use std::fmt;

/// Errors produced by tree training and prediction.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TreesError {
    /// The training set was empty.
    EmptyTraining,
    /// Features and targets had different lengths.
    LengthMismatch {
        /// Number of samples in the feature matrix.
        features: usize,
        /// Number of targets.
        targets: usize,
    },
    /// A hyperparameter was outside its valid domain.
    InvalidParameter {
        /// Description of the violation.
        message: String,
    },
    /// Prediction input did not match the trained schema.
    SchemaMismatch {
        /// Number of features the model was trained on.
        trained: usize,
        /// Number of features in the prediction input.
        given: usize,
    },
    /// A feature column contained a NaN or infinite value.
    NonFinite {
        /// Index of the offending feature column.
        feature: usize,
    },
}

impl fmt::Display for TreesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreesError::EmptyTraining => write!(f, "training set is empty"),
            TreesError::LengthMismatch { features, targets } => write!(
                f,
                "feature matrix has {features} samples but {targets} targets were given"
            ),
            TreesError::InvalidParameter { message } => {
                write!(f, "invalid parameter: {message}")
            }
            TreesError::SchemaMismatch { trained, given } => write!(
                f,
                "model was trained on {trained} features but input has {given}"
            ),
            TreesError::NonFinite { feature } => write!(
                f,
                "feature column {feature} contains a NaN or infinite value"
            ),
        }
    }
}

impl std::error::Error for TreesError {}

impl From<smart_stats::StatsError> for TreesError {
    fn from(e: smart_stats::StatsError) -> TreesError {
        TreesError::InvalidParameter {
            message: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(TreesError::EmptyTraining.to_string().contains("empty"));
        let e = TreesError::LengthMismatch {
            features: 10,
            targets: 9,
        };
        assert!(e.to_string().contains("10") && e.to_string().contains('9'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TreesError>();
    }
}
