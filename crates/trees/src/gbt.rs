//! Gradient-boosted trees for binary classification (logistic loss), with
//! gain- and split-count feature importances — the stand-in for XGBoost in
//! the paper's selector set (§II-C).

use crate::binned::BinnedMatrix;
use crate::config::{MaxFeatures, SplitStrategy, TreeConfig};
use crate::error::TreesError;
use crate::forest::mix_seed;
use crate::tree::RegressionTree;
use rng::rngs::StdRng;
use rng::SeedableRng;
use smart_stats::sampling::sample_without_replacement;
use smart_stats::FeatureMatrix;

/// Gradient-boosting hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoostingConfig {
    /// Number of boosting rounds (paper: 100 trees).
    pub n_rounds: usize,
    /// Shrinkage applied to each stage's contribution.
    pub learning_rate: f64,
    /// Per-stage tree configuration (boosting favours shallow trees).
    pub tree: TreeConfig,
    /// Row subsampling fraction per round (stochastic gradient boosting).
    pub subsample: f64,
    /// RNG seed.
    pub seed: u64,
    /// Split-search engine (default: [`SplitStrategy::Histogram`]). With
    /// `MaxFeatures::All` (the boosting default) the histogram engine also
    /// applies the sibling subtraction trick.
    pub strategy: SplitStrategy,
}

impl Default for BoostingConfig {
    fn default() -> Self {
        BoostingConfig {
            n_rounds: 100,
            learning_rate: 0.1,
            tree: TreeConfig {
                max_depth: 4,
                min_samples_leaf: 5,
                max_features: MaxFeatures::All,
                ..TreeConfig::default()
            },
            subsample: 1.0,
            seed: 0,
            strategy: SplitStrategy::default(),
        }
    }
}

/// A trained gradient-boosted classifier.
#[derive(Debug, Clone, PartialEq)]
pub struct GradientBoosting {
    stages: Vec<RegressionTree>,
    base_score: f64,
    learning_rate: f64,
    n_features: usize,
}

impl GradientBoosting {
    /// Train a boosted model on `data` against boolean `labels`.
    ///
    /// # Errors
    ///
    /// Returns [`TreesError::EmptyTraining`], [`TreesError::LengthMismatch`],
    /// or [`TreesError::InvalidParameter`] for degenerate inputs.
    pub fn fit(
        data: &FeatureMatrix,
        labels: &[bool],
        config: &BoostingConfig,
    ) -> Result<Self, TreesError> {
        config.tree.validate()?;
        if config.n_rounds == 0 {
            return Err(TreesError::InvalidParameter {
                message: "n_rounds must be at least 1".to_string(),
            });
        }
        if !(config.learning_rate > 0.0 && config.learning_rate <= 1.0) {
            return Err(TreesError::InvalidParameter {
                message: "learning_rate must be in (0, 1]".to_string(),
            });
        }
        if !(config.subsample > 0.0 && config.subsample <= 1.0) {
            return Err(TreesError::InvalidParameter {
                message: "subsample must be in (0, 1]".to_string(),
            });
        }
        let n = data.n_rows();
        if n == 0 {
            return Err(TreesError::EmptyTraining);
        }
        if labels.len() != n {
            return Err(TreesError::LengthMismatch {
                features: n,
                targets: labels.len(),
            });
        }

        let y: Vec<f64> = labels.iter().map(|&l| f64::from(u8::from(l))).collect();
        let pos = y.iter().sum::<f64>();
        // Log-odds prior, clamped away from degenerate single-class inputs.
        let prior = (pos / n as f64).clamp(1e-6, 1.0 - 1e-6);
        let base_score = (prior / (1.0 - prior)).ln();

        let mut scores = vec![base_score; n];
        let mut stages = Vec::with_capacity(config.n_rounds);

        // Bin once; every boosting round re-reads the same codes.
        let binned = match config.strategy {
            SplitStrategy::Histogram => Some(BinnedMatrix::from_matrix(data)?),
            SplitStrategy::Exact => None,
        };

        for round in 0..config.n_rounds {
            let mut rng = StdRng::seed_from_u64(mix_seed(config.seed, round as u64));
            // Negative gradient of logistic loss: residual y - p.
            let probs: Vec<f64> = scores.iter().map(|&s| sigmoid(s)).collect();
            let residuals: Vec<f64> = y.iter().zip(&probs).map(|(y, p)| y - p).collect();

            let rows: Vec<usize> = if config.subsample < 1.0 {
                let k = ((n as f64 * config.subsample).round() as usize).clamp(1, n);
                sample_without_replacement(&mut rng, n, k)?
            } else {
                (0..n).collect()
            };

            let mut tree = match &binned {
                Some(b) => RegressionTree::fit_binned(b, &residuals, &rows, &config.tree, &mut rng),
                None => RegressionTree::fit(data, &residuals, &rows, &config.tree, &mut rng),
            }?;

            // Newton re-labeling: leaf value = Σ(y-p) / Σ p(1-p).
            let mut grad_sum: Vec<f64> = vec![0.0; tree.n_nodes()];
            let mut hess_sum: Vec<f64> = vec![0.0; tree.n_nodes()];
            for &r in &rows {
                let leaf = tree.apply(data, r);
                grad_sum[leaf] += residuals[r];
                hess_sum[leaf] += probs[r] * (1.0 - probs[r]);
            }
            for leaf in 0..tree.n_nodes() {
                if hess_sum[leaf] > 0.0 {
                    tree.set_leaf_value(leaf, grad_sum[leaf] / (hess_sum[leaf] + 1e-9));
                }
            }

            // Update scores on the full training set.
            for (row, score) in scores.iter_mut().enumerate() {
                *score += config.learning_rate * tree.predict_row(data, row);
            }
            stages.push(tree);
        }

        Ok(GradientBoosting {
            stages,
            base_score,
            learning_rate: config.learning_rate,
            n_features: data.n_features(),
        })
    }

    /// Predicted failure probability per row.
    ///
    /// # Errors
    ///
    /// Returns [`TreesError::SchemaMismatch`] when the feature count differs
    /// from training.
    pub fn predict_proba(&self, data: &FeatureMatrix) -> Result<Vec<f64>, TreesError> {
        if data.n_features() != self.n_features {
            return Err(TreesError::SchemaMismatch {
                trained: self.n_features,
                given: data.n_features(),
            });
        }
        let mut scores = vec![self.base_score; data.n_rows()];
        for stage in &self.stages {
            for (row, score) in scores.iter_mut().enumerate() {
                *score += self.learning_rate * stage.predict_row(data, row);
            }
        }
        Ok(scores.into_iter().map(sigmoid).collect())
    }

    /// Total split gain per feature across all stages, normalized to sum to
    /// 1 — XGBoost's "gain" importance.
    pub fn gain_importances(&self) -> Vec<f64> {
        let mut totals = vec![0.0; self.n_features];
        for stage in &self.stages {
            for (t, g) in totals.iter_mut().zip(stage.gain_importances()) {
                *t += g;
            }
        }
        normalize(&mut totals);
        totals
    }

    /// Number of splits per feature across all stages, normalized to sum to
    /// 1 — XGBoost's "weight" importance.
    pub fn split_count_importances(&self) -> Vec<f64> {
        let mut totals = vec![0.0; self.n_features];
        for stage in &self.stages {
            for (t, c) in totals.iter_mut().zip(stage.split_counts()) {
                *t += *c as f64;
            }
        }
        normalize(&mut totals);
        totals
    }

    /// The boosting stages.
    pub fn stages(&self) -> &[RegressionTree] {
        &self.stages
    }

    /// Number of features the model was trained on.
    pub fn n_features(&self) -> usize {
        self.n_features
    }
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

fn normalize(xs: &mut [f64]) {
    let total: f64 = xs.iter().sum();
    if total > 0.0 {
        for x in xs.iter_mut() {
            *x /= total;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rng::{RngExt, SeedableRng};

    fn make_data(n: usize, seed: u64) -> (FeatureMatrix, Vec<bool>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let x0: f64 = rng.random();
            let x1: f64 = rng.random();
            let x2: f64 = rng.random();
            // Nonlinear: positive inside a band of x0 + interaction with x1.
            labels.push(x0 > 0.6 || (x0 > 0.3 && x1 > 0.7));
            rows.push(vec![x0, x1, x2]);
        }
        (
            FeatureMatrix::from_rows(vec!["x0".into(), "x1".into(), "noise".into()], &rows)
                .unwrap(),
            labels,
        )
    }

    fn small_config() -> BoostingConfig {
        BoostingConfig {
            n_rounds: 40,
            seed: 1,
            ..BoostingConfig::default()
        }
    }

    #[test]
    fn learns_nonlinear_rule() {
        let (data, labels) = make_data(500, 2);
        let model = GradientBoosting::fit(&data, &labels, &small_config()).unwrap();
        let proba = model.predict_proba(&data).unwrap();
        let acc = proba
            .iter()
            .zip(&labels)
            .filter(|(p, &l)| (**p >= 0.5) == l)
            .count() as f64
            / labels.len() as f64;
        assert!(acc > 0.95, "acc = {acc}");
    }

    #[test]
    fn exact_strategy_learns_too() {
        let (data, labels) = make_data(500, 21);
        let config = BoostingConfig {
            strategy: SplitStrategy::Exact,
            ..small_config()
        };
        let model = GradientBoosting::fit(&data, &labels, &config).unwrap();
        let proba = model.predict_proba(&data).unwrap();
        let acc = proba
            .iter()
            .zip(&labels)
            .filter(|(p, &l)| (**p >= 0.5) == l)
            .count() as f64
            / labels.len() as f64;
        assert!(acc > 0.95, "acc = {acc}");
    }

    #[test]
    fn probabilities_are_probabilities() {
        let (data, labels) = make_data(200, 3);
        let model = GradientBoosting::fit(&data, &labels, &small_config()).unwrap();
        for p in model.predict_proba(&data).unwrap() {
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn training_is_deterministic() {
        let (data, labels) = make_data(200, 5);
        let a = GradientBoosting::fit(&data, &labels, &small_config()).unwrap();
        let b = GradientBoosting::fit(&data, &labels, &small_config()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn importances_favor_signal() {
        let (data, labels) = make_data(500, 7);
        let model = GradientBoosting::fit(&data, &labels, &small_config()).unwrap();
        let gain = model.gain_importances();
        let count = model.split_count_importances();
        assert!(gain[0] > gain[2], "gain = {gain:?}");
        assert!(count[0] > count[2], "count = {count:?}");
        assert!((gain.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!((count.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn subsampling_still_learns() {
        let (data, labels) = make_data(500, 9);
        let config = BoostingConfig {
            subsample: 0.6,
            ..small_config()
        };
        let model = GradientBoosting::fit(&data, &labels, &config).unwrap();
        let proba = model.predict_proba(&data).unwrap();
        let acc = proba
            .iter()
            .zip(&labels)
            .filter(|(p, &l)| (**p >= 0.5) == l)
            .count() as f64
            / labels.len() as f64;
        assert!(acc > 0.9, "acc = {acc}");
    }

    #[test]
    fn rejects_bad_hyperparameters() {
        let (data, labels) = make_data(50, 11);
        for mutate in [
            |c: &mut BoostingConfig| c.n_rounds = 0,
            |c: &mut BoostingConfig| c.learning_rate = 0.0,
            |c: &mut BoostingConfig| c.learning_rate = 1.5,
            |c: &mut BoostingConfig| c.subsample = 0.0,
        ] {
            let mut c = small_config();
            mutate(&mut c);
            assert!(GradientBoosting::fit(&data, &labels, &c).is_err());
        }
    }

    #[test]
    fn single_class_predicts_near_prior() {
        let (data, _) = make_data(60, 13);
        let labels = vec![true; 60];
        let model = GradientBoosting::fit(&data, &labels, &small_config()).unwrap();
        let proba = model.predict_proba(&data).unwrap();
        assert!(proba.iter().all(|&p| p > 0.95));
    }

    #[test]
    fn predict_rejects_schema_mismatch() {
        let (data, labels) = make_data(50, 17);
        let model = GradientBoosting::fit(&data, &labels, &small_config()).unwrap();
        let narrow = FeatureMatrix::from_columns(vec!["x".into()], vec![vec![1.0]]).unwrap();
        assert!(matches!(
            model.predict_proba(&narrow),
            Err(TreesError::SchemaMismatch { .. })
        ));
    }

    #[test]
    fn more_rounds_reduce_training_error() {
        let (data, labels) = make_data(400, 19);
        let err = |rounds: usize| {
            let config = BoostingConfig {
                n_rounds: rounds,
                ..small_config()
            };
            let model = GradientBoosting::fit(&data, &labels, &config).unwrap();
            let proba = model.predict_proba(&data).unwrap();
            proba
                .iter()
                .zip(&labels)
                .map(|(p, &l)| (p - f64::from(u8::from(l))).powi(2))
                .sum::<f64>()
        };
        assert!(err(50) < err(5));
    }
}
