//! The model-checking suite (`cargo test -p smart-sync --features model`):
//! every production scenario must pass under bounded exploration, and
//! every deliberately broken fixture must be caught — the checker is
//! mutation-tested alongside the code it checks.
#![cfg(feature = "model")]

use sync::fixtures::{IfWaitQueue, MissingNotifyQueue};
use sync::model::{explore, parse_schedule, Config};
use sync::scenarios;
use sync::thread;

// ---------------------------------------------------------------------------
// Production scenarios: must pass on every bounded schedule.
// ---------------------------------------------------------------------------

#[test]
fn all_scenarios_pass_and_meet_coverage_floors() {
    let config = Config::from_env();
    for scenario in scenarios::all() {
        let report = scenario.run(&config); // panics (with schedule) on failure
        assert!(
            report.schedules >= scenario.min_schedules,
            "scenario '{}' explored only {} schedules (committed floor {})",
            scenario.name,
            report.schedules,
            scenario.min_schedules
        );
    }
}

// ---------------------------------------------------------------------------
// Fixture bugs: the checker must catch each one within the bounded search.
// ---------------------------------------------------------------------------

#[test]
fn missing_notify_is_caught_as_deadlock() {
    let report = explore(&Config::default(), || {
        let q: MissingNotifyQueue<u32> = MissingNotifyQueue::new();
        thread::scope(|scope| {
            let consumer = scope.spawn(|| q.pop());
            q.push(7);
            let got = consumer.join().unwrap();
            assert_eq!(got, 7);
        });
    });
    let failure = report
        .failure
        .expect("the missing notify must be caught in bounded schedules");
    assert!(
        failure.message.contains("deadlock"),
        "expected a deadlock report, got: {}",
        failure.message
    );
    assert!(
        failure.message.contains("waiting on condvar"),
        "the report should name the parked waiter: {}",
        failure.message
    );
}

#[test]
fn if_guarded_wait_is_caught() {
    let report = explore(&Config::default(), || {
        let q: IfWaitQueue<u32> = IfWaitQueue::new();
        thread::scope(|scope| {
            let a = scope.spawn(|| q.pop());
            let b = scope.spawn(|| q.pop());
            q.push(1);
            q.push(2);
            let _ = (a.join().unwrap(), b.join().unwrap());
        });
    });
    let failure = report
        .failure
        .expect("the if-guarded wait must be caught in bounded schedules");
    assert!(
        failure.message.contains("if-guarded wait"),
        "the fixture's own expect message should surface: {}",
        failure.message
    );
}

// ---------------------------------------------------------------------------
// The failure artifact: schedules replay deterministically.
// ---------------------------------------------------------------------------

#[test]
fn failing_schedule_replays_to_the_same_failure() {
    let broken = || {
        let q: MissingNotifyQueue<u32> = MissingNotifyQueue::new();
        thread::scope(|scope| {
            let consumer = scope.spawn(|| q.pop());
            q.push(7);
            assert_eq!(consumer.join().unwrap(), 7);
        });
    };
    let first = explore(&Config::default(), broken)
        .failure
        .expect("fixture must fail");
    let replay = Config {
        replay: Some(parse_schedule(&first.schedule).expect("schedule string parses")),
        ..Config::default()
    };
    let second = explore(&replay, broken)
        .failure
        .expect("replaying the failing schedule must fail again");
    assert_eq!(
        first.message, second.message,
        "replay must reproduce the same failure"
    );
    assert_eq!(first.schedule, second.schedule);
}

#[test]
fn exploration_is_deterministic_at_a_fixed_seed() {
    let scenario = &scenarios::all()[0];
    let config = Config::default();
    let a = scenario.run(&config);
    let b = scenario.run(&config);
    assert_eq!(
        (a.schedules, a.dfs_schedules, a.dfs_complete),
        (b.schedules, b.dfs_schedules, b.dfs_complete),
        "same config, same closure: exploration must be bit-deterministic"
    );
}
