//! Shutdown handshake for monitor threads (the telemetry watchdog and
//! metrics listener): a boolean stop flag behind a [`Mutex`] + [`Condvar`]
//! pair, so a poll loop can sleep on the condvar and still be woken
//! promptly by [`StopFlag::stop`] — no full poll interval is ever waited
//! out during teardown, and no stop can be lost (the flag is checked under
//! the same lock the wait releases).
//!
//! Under the `model` feature the timed wait's timeout becomes a scheduler
//! choice, so `scenarios::watchdog_shutdown_terminates` proves the
//! poll/stop handshake terminates on every bounded schedule.

use std::time::Duration;

use crate::{Condvar, Mutex, PoisonError};

/// One-way stop signal with a condvar wake: set once, observed by a poll
/// loop. Poison-tolerant like the queues — a stop must get through even if
/// some observer panicked with the lock held.
pub struct StopFlag {
    stopped: Mutex<bool>,
    wake: Condvar,
}

impl Default for StopFlag {
    fn default() -> StopFlag {
        StopFlag::new()
    }
}

impl StopFlag {
    /// A flag in the running (not stopped) state.
    pub fn new() -> StopFlag {
        StopFlag {
            stopped: Mutex::new(false),
            wake: Condvar::new(),
        }
    }

    /// Raise the flag and wake every sleeping observer. Idempotent.
    pub fn stop(&self) {
        *self.stopped.lock().unwrap_or_else(PoisonError::into_inner) = true;
        self.wake.notify_all();
    }

    /// Whether [`StopFlag::stop`] has been called.
    pub fn is_stopped(&self) -> bool {
        *self.stopped.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Sleep until `timeout` elapses or the flag is raised, whichever
    /// comes first; returns the flag's value. A spurious wake returns
    /// early with `false`, which callers treat as an early poll tick —
    /// that is why this is a single wait and not a predicate loop: the
    /// caller's own loop (`while !flag.wait_timeout(poll) { tick() }`) is
    /// the predicate re-check.
    pub fn wait_timeout(&self, timeout: Duration) -> bool {
        let guard = self.stopped.lock().unwrap_or_else(PoisonError::into_inner);
        if *guard {
            return true;
        }
        // lint:allow(condvar-loop) single timed wait by design: the
        // caller's poll loop is the predicate re-check, and an early
        // (spurious) return only costs one extra tick
        let (guard, _timed_out) = match self.wake.wait_timeout(guard, timeout) {
            Ok(pair) => pair,
            Err(poisoned) => poisoned.into_inner(),
        };
        *guard
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_running_and_stops_once() {
        let flag = StopFlag::new();
        assert!(!flag.is_stopped());
        flag.stop();
        assert!(flag.is_stopped());
        flag.stop(); // idempotent
        assert!(flag.is_stopped());
        // Already stopped: returns immediately without sleeping.
        assert!(flag.wait_timeout(Duration::from_secs(3600)));
    }

    #[test]
    fn wait_times_out_while_running() {
        let flag = StopFlag::new();
        assert!(!flag.wait_timeout(Duration::from_millis(1)));
    }

    #[test]
    fn stop_wakes_a_sleeping_waiter() {
        let flag = StopFlag::new();
        std::thread::scope(|scope| {
            let h = scope.spawn(|| {
                // Generous timeout: the stop below must cut it short.
                let mut stopped = flag.wait_timeout(Duration::from_secs(60));
                // Tolerate a spurious early return: re-wait like a real
                // poll loop would.
                while !stopped {
                    stopped = flag.wait_timeout(Duration::from_secs(60));
                }
                stopped
            });
            flag.stop();
            assert!(h.join().unwrap());
        });
    }
}
