//! Loom-style deterministic schedule exploration (the `model` feature;
//! DESIGN.md §13).
//!
//! # How it works
//!
//! [`explore`] runs a test closure many times. Each run spawns real OS
//! threads (via [`thread::scope`]) but serializes them: a token-passing
//! scheduler lets exactly one thread execute between *yield points*, and
//! every shim operation — lock acquire/release, condvar wait/notify,
//! atomic access, spawn, join — is a yield point. Whenever more than one
//! continuation is possible (several runnable threads, or a waiter that
//! could wake spuriously / by timeout), the scheduler records a numbered
//! choice. A complete run is therefore a sequence of small integers — the
//! *schedule* — and replaying the same sequence reproduces the exact
//! interleaving, which is what makes failures actionable.
//!
//! Exploration is depth-first over the choice tree with a **preemption
//! bound** (Musuvathi & Qadeer, PLDI 2007): schedules that preempt a
//! runnable thread more than `preemption_bound` times are pruned, which
//! keeps the tree tractable while still covering the interleavings that
//! expose almost all real concurrency bugs. Past the DFS budget, seeded
//! random schedules (xoshiro256++ via `crates/rng`) sample the unbounded
//! space; the seed makes the whole suite deterministic.
//!
//! # What it detects
//!
//! * **Deadlock** — no thread is runnable, no timed waiter can be rescued
//!   by a timeout, and not everyone has finished. The failure message
//!   lists each blocked thread and what it is waiting on.
//! * **Double-lock** — a thread acquiring a mutex it already holds.
//! * **Lost condvar wakeups** — a `wait` whose predicate is not re-checked
//!   in a loop is exposed by spurious-wake and timeout choices: the
//!   scheduler may wake any waiter at any choice point, so an `if`-guarded
//!   wait runs its body with the predicate false and trips its own
//!   assertions ([`crate::fixtures`] pins this).
//! * **Invariant violations** — any panic in the closure (assertion,
//!   `expect`, index error) fails the schedule that produced it.
//!
//! A failure panics with the serialized schedule string; re-running with
//! [`Config::replay`] (or `SMART_SYNC_SCHEDULE=<string>`) reproduces it.

use std::cell::RefCell;
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering as StdOrdering};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, PoisonError, TryLockError};
use std::time::Duration;

use rng::{Rng, SeedableRng, StdRng};

use crate::LockResult;

/// Panic payload used to tear a schedule down after its failure is
/// recorded: every parked thread wakes, panics with this sentinel, and the
/// spawn wrapper swallows it so `std::thread::scope` never double-panics.
const ABORT: &str = "smart-sync model: schedule aborted after failure";

/// Marker returned by a model thread whose closure was torn down by the
/// sentinel instead of producing its value.
struct Aborted;

/// Monotonic token distinguishing schedule runs, so `Mutex`/`Condvar`
/// instances (including ones created in an earlier run) lazily re-register
/// with the current run's scheduler on first touch.
static NEXT_RUN_TOKEN: AtomicU64 = AtomicU64::new(1);

// ---------------------------------------------------------------------------
// Scheduler state
// ---------------------------------------------------------------------------

#[derive(Clone, Debug, PartialEq, Eq)]
enum Blocked {
    /// Eligible to run (or currently running).
    Runnable,
    /// Waiting to acquire the mutex with this id.
    Lock(usize),
    /// Parked in a condvar wait.
    Wait {
        cv: usize,
        mutex: usize,
        timed: bool,
    },
    /// Waiting for the thread with this id to finish.
    Join(usize),
    /// Closure returned (or was torn down).
    Finished,
}

/// Why a condvar waiter resumed — a recorded scheduler decision.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum WakeKind {
    Notified,
    Spurious,
    Timeout,
}

#[derive(Debug)]
struct ThreadInfo {
    state: Blocked,
    wake: Option<WakeKind>,
}

/// One recorded decision: `chosen` out of `n` possible continuations.
/// Options `>= first_preemptive` preempt a still-runnable previous thread
/// (or inject a spurious/timeout wake) and count against the bound.
#[derive(Clone, Copy, Debug)]
struct Point {
    n: usize,
    chosen: usize,
    first_preemptive: usize,
    preemptions_before: u32,
}

/// How the next choice is made.
enum Policy {
    /// Follow `prefix`, then always take option 0 (run-to-completion).
    /// Covers DFS descent and explicit replay.
    Scripted(Vec<usize>),
    /// Uniform choice at every point (the post-DFS sampling phase).
    Random(StdRng),
}

/// A schedule that violated a checked property.
#[derive(Clone, Debug)]
pub struct Failure {
    /// What went wrong (deadlock description, double-lock, panic message).
    pub message: String,
    /// The decision sequence that produced it, e.g. `"1.0.2"`. Feed it to
    /// [`Config::replay`] or `SMART_SYNC_SCHEDULE` to reproduce.
    pub schedule: String,
}

struct SchedState {
    threads: Vec<ThreadInfo>,
    /// Holder tid per registered mutex, `None` when free.
    mutexes: Vec<Option<usize>>,
    n_condvars: usize,
    current: Option<usize>,
    points: Vec<Point>,
    preemptions: u32,
    wake_budget: u32,
    ops: u64,
    policy: Policy,
    failure: Option<Failure>,
}

struct Scheduler {
    run_token: u64,
    max_ops: u64,
    state: StdMutex<SchedState>,
    cv: StdCondvar,
}

/// Thread-local binding of an OS thread to its model scheduler. Absent on
/// threads outside any model run, where every shim type falls back to
/// plain `std::sync` behavior (so non-model unit tests keep working even
/// when the crate is compiled with the feature on).
#[derive(Clone)]
struct Ctx {
    sched: Arc<Scheduler>,
    tid: usize,
}

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

fn current_ctx() -> Option<Ctx> {
    CTX.with(|c| c.borrow().clone())
}

fn schedule_string(points: &[Point]) -> String {
    points
        .iter()
        .map(|p| p.chosen.to_string())
        .collect::<Vec<_>>()
        .join(".")
}

/// Parse a schedule string (`"1.0.2"`, or `""` for the empty schedule)
/// back into a decision sequence. `None` on malformed input.
pub fn parse_schedule(s: &str) -> Option<Vec<usize>> {
    let s = s.trim();
    if s.is_empty() {
        return Some(Vec::new());
    }
    s.split('.').map(|part| part.parse().ok()).collect()
}

impl Scheduler {
    fn new(config: &Config, policy: Policy) -> Scheduler {
        Scheduler {
            run_token: NEXT_RUN_TOKEN.fetch_add(1, StdOrdering::SeqCst),
            max_ops: config.max_ops,
            state: StdMutex::new(SchedState {
                threads: Vec::new(),
                mutexes: Vec::new(),
                n_condvars: 0,
                current: None,
                points: Vec::new(),
                preemptions: 0,
                wake_budget: config.wake_budget,
                ops: 0,
                policy,
                failure: None,
            }),
            cv: StdCondvar::new(),
        }
    }

    fn lock_state(&self) -> std::sync::MutexGuard<'_, SchedState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn register_thread(&self) -> usize {
        let mut st = self.lock_state();
        st.threads.push(ThreadInfo {
            state: Blocked::Runnable,
            wake: None,
        });
        st.threads.len() - 1
    }

    fn new_mutex(&self) -> usize {
        let mut st = self.lock_state();
        st.mutexes.push(None);
        st.mutexes.len() - 1
    }

    fn new_condvar(&self) -> usize {
        let mut st = self.lock_state();
        st.n_condvars += 1;
        st.n_condvars - 1
    }

    /// Record a failure (first one wins) and wake every parked thread so
    /// the schedule tears down.
    fn fail(&self, st: &mut SchedState, message: String) {
        if st.failure.is_none() {
            st.failure = Some(Failure {
                message,
                schedule: schedule_string(&st.points),
            });
        }
        self.cv.notify_all();
    }

    fn fail_from_panic(&self, payload: &(dyn std::any::Any + Send)) {
        if is_abort_payload(payload) {
            return;
        }
        let mut st = self.lock_state();
        let msg = panic_message(payload);
        self.fail(&mut st, format!("panic in model thread: {msg}"));
    }

    /// Panic-with-sentinel if this schedule already failed: called at the
    /// top of every shim operation so threads drain quickly.
    fn check_abort(&self, st: &SchedState) {
        if st.failure.is_some() {
            panic::panic_any(ABORT);
        }
    }

    /// Park the calling thread until the scheduler hands it the token (or
    /// the schedule fails, in which case it panics with the sentinel).
    fn park<'a>(
        &'a self,
        mut st: std::sync::MutexGuard<'a, SchedState>,
        tid: usize,
    ) -> std::sync::MutexGuard<'a, SchedState> {
        loop {
            if st.failure.is_some() {
                drop(st);
                panic::panic_any(ABORT);
            }
            if st.current == Some(tid) && st.threads[tid].state == Blocked::Runnable {
                return st;
            }
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Like [`Scheduler::park`] but never panics — used from guard drops,
    /// where a sentinel panic could double-panic an unwinding thread. On
    /// failure the thread simply continues; its next shim op aborts it.
    fn park_quiet<'a>(
        &'a self,
        mut st: std::sync::MutexGuard<'a, SchedState>,
        tid: usize,
    ) -> std::sync::MutexGuard<'a, SchedState> {
        loop {
            if st.failure.is_some() {
                return st;
            }
            if st.current == Some(tid) && st.threads[tid].state == Blocked::Runnable {
                return st;
            }
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    fn eligible(st: &SchedState, tid: usize) -> bool {
        match st.threads[tid].state {
            Blocked::Runnable => true,
            Blocked::Lock(m) => st.mutexes[m].is_none(),
            Blocked::Join(target) => st.threads[target].state == Blocked::Finished,
            Blocked::Wait { .. } | Blocked::Finished => false,
        }
    }

    fn apply_wake(st: &mut SchedState, tid: usize, kind: WakeKind) {
        if let Blocked::Wait { mutex, .. } = st.threads[tid].state {
            st.threads[tid].state = Blocked::Lock(mutex);
            st.threads[tid].wake = Some(kind);
        }
    }

    /// The heart of the model: pick which thread owns the token next.
    /// `prev` is the thread that just yielded (bias option 0 toward it, so
    /// the default policy is run-to-completion and every *other* option is
    /// a preemption).
    fn schedule(&self, st: &mut SchedState, prev: Option<usize>) {
        st.ops += 1;
        if st.ops > self.max_ops {
            self.fail(
                st,
                format!(
                    "op budget exhausted after {} yield points (livelock, or raise Config::max_ops)",
                    self.max_ops
                ),
            );
            return;
        }
        loop {
            if st.failure.is_some() {
                self.cv.notify_all();
                return;
            }
            let mut runs: Vec<usize> = (0..st.threads.len())
                .filter(|&t| Self::eligible(st, t))
                .collect();
            if runs.is_empty() {
                // Time advance: a timed waiter's timeout firing is normal
                // behavior, not interference — rescue the lowest one and
                // re-evaluate. Unrecorded (forced, hence deterministic).
                let rescue = st
                    .threads
                    .iter()
                    .position(|t| matches!(t.state, Blocked::Wait { timed: true, .. }));
                if let Some(t) = rescue {
                    Self::apply_wake(st, t, WakeKind::Timeout);
                    continue;
                }
                if st.threads.iter().all(|t| t.state == Blocked::Finished) {
                    st.current = None;
                    self.cv.notify_all();
                    return;
                }
                let msg = describe_deadlock(st);
                self.fail(st, msg);
                return;
            }
            if let Some(p) = prev {
                if let Some(pos) = runs.iter().position(|&t| t == p) {
                    runs.remove(pos);
                    runs.insert(0, p);
                }
            }
            // Interference choices: wake a condvar waiter spuriously (or
            // by timeout) even though nobody notified it. Budgeted so
            // random schedules terminate.
            let wakes: Vec<(usize, WakeKind)> = if st.wake_budget > 0 {
                st.threads
                    .iter()
                    .enumerate()
                    .filter_map(|(t, info)| match info.state {
                        Blocked::Wait { timed: true, .. } => Some((t, WakeKind::Timeout)),
                        Blocked::Wait { timed: false, .. } => Some((t, WakeKind::Spurious)),
                        _ => None,
                    })
                    .collect()
            } else {
                Vec::new()
            };
            let n = runs.len() + wakes.len();
            let first_preemptive = if prev.is_some() && runs.first() == prev.as_ref() {
                1
            } else {
                runs.len()
            };
            let chosen = if n == 1 { 0 } else { self.pick(st, n) };
            if n > 1 {
                let point = Point {
                    n,
                    chosen,
                    first_preemptive,
                    preemptions_before: st.preemptions,
                };
                st.points.push(point);
                if chosen >= first_preemptive {
                    st.preemptions += 1;
                }
            }
            if chosen < runs.len() {
                let t = runs[chosen];
                match st.threads[t].state {
                    Blocked::Lock(m) => {
                        st.mutexes[m] = Some(t);
                        st.threads[t].state = Blocked::Runnable;
                    }
                    Blocked::Join(_) => st.threads[t].state = Blocked::Runnable,
                    Blocked::Runnable => {}
                    _ => unreachable!("ineligible thread chosen"),
                }
                st.current = Some(t);
                self.cv.notify_all();
                return;
            }
            let (t, kind) = wakes[chosen - runs.len()];
            st.wake_budget = st.wake_budget.saturating_sub(1);
            Self::apply_wake(st, t, kind);
            // A wake is not a transfer of control; choose again with the
            // woken thread now contending for its mutex.
        }
    }

    fn pick(&self, st: &mut SchedState, n: usize) -> usize {
        let idx = st.points.len();
        match &mut st.policy {
            Policy::Scripted(prefix) => {
                if idx < prefix.len() {
                    // A stale replay string can name an option that no
                    // longer exists; clamp instead of panicking so the
                    // mismatch surfaces as a diverged (passing) run.
                    prefix[idx].min(n - 1)
                } else {
                    0
                }
            }
            Policy::Random(rng) => rng.random_range(0..n as u64) as usize,
        }
    }

    // -- shim operations ---------------------------------------------------

    fn op_lock(&self, tid: usize, mid: usize) {
        let mut st = self.lock_state();
        self.check_abort(&st);
        if st.mutexes[mid] == Some(tid) {
            let msg = format!("double-lock: thread {tid} re-acquired mutex {mid} it already holds");
            self.fail(&mut st, msg);
            drop(st);
            panic::panic_any(ABORT);
        }
        st.threads[tid].state = Blocked::Lock(mid);
        self.schedule(&mut st, Some(tid));
        let st = self.park(st, tid);
        debug_assert_eq!(st.mutexes[mid], Some(tid));
    }

    /// Release never panics: it runs inside guard drops, possibly during
    /// an unwind.
    fn op_unlock(&self, tid: usize, mid: usize) {
        let mut st = self.lock_state();
        if st.mutexes[mid] == Some(tid) {
            st.mutexes[mid] = None;
        }
        if st.failure.is_some() || std::thread::panicking() {
            self.cv.notify_all();
            return;
        }
        self.schedule(&mut st, Some(tid));
        drop(self.park_quiet(st, tid));
    }

    fn op_wait(&self, tid: usize, cvid: usize, mid: usize, timed: bool) -> WakeKind {
        let mut st = self.lock_state();
        self.check_abort(&st);
        if st.mutexes[mid] == Some(tid) {
            st.mutexes[mid] = None;
        }
        st.threads[tid].state = Blocked::Wait {
            cv: cvid,
            mutex: mid,
            timed,
        };
        st.threads[tid].wake = None;
        self.schedule(&mut st, Some(tid));
        let mut st = self.park(st, tid);
        debug_assert_eq!(st.mutexes[mid], Some(tid));
        st.threads[tid].wake.take().unwrap_or(WakeKind::Notified)
    }

    fn op_notify(&self, tid: usize, cvid: usize, all: bool) {
        let mut st = self.lock_state();
        self.check_abort(&st);
        let waiters: Vec<usize> = st
            .threads
            .iter()
            .enumerate()
            .filter(|(_, info)| matches!(info.state, Blocked::Wait { cv, .. } if cv == cvid))
            .map(|(t, _)| t)
            .collect();
        // notify_one wakes the lowest-tid waiter: a deterministic stand-in
        // for std's unspecified pick (documented simplification; the
        // workspace's primitives all use notify_all).
        let targets: &[usize] = if all {
            &waiters
        } else {
            &waiters[..waiters.len().min(1)]
        };
        for &t in targets {
            Self::apply_wake(&mut st, t, WakeKind::Notified);
        }
        self.schedule(&mut st, Some(tid));
        drop(self.park(st, tid));
    }

    fn op_join(&self, tid: usize, target: usize) {
        let mut st = self.lock_state();
        self.check_abort(&st);
        st.threads[tid].state = Blocked::Join(target);
        self.schedule(&mut st, Some(tid));
        drop(self.park(st, tid));
    }

    /// Plain yield point: atomics, spawn.
    fn op_yield(&self, tid: usize) {
        let mut st = self.lock_state();
        self.check_abort(&st);
        self.schedule(&mut st, Some(tid));
        drop(self.park(st, tid));
    }

    fn op_finish(&self, tid: usize) {
        let mut st = self.lock_state();
        st.threads[tid].state = Blocked::Finished;
        if st.failure.is_some() {
            self.cv.notify_all();
            return;
        }
        self.schedule(&mut st, None);
        // No park: the OS thread exits.
    }

    /// First scheduling of a freshly spawned thread: park until the token
    /// arrives.
    fn op_start(&self, tid: usize) {
        let st = self.lock_state();
        drop(self.park(st, tid));
    }
}

fn describe_deadlock(st: &SchedState) -> String {
    let mut parts = Vec::new();
    for (t, info) in st.threads.iter().enumerate() {
        let part = match info.state {
            Blocked::Lock(m) => match st.mutexes[m] {
                Some(holder) => format!("thread {t} blocked on mutex {m} held by thread {holder}"),
                None => format!("thread {t} blocked on free mutex {m}"),
            },
            Blocked::Wait { cv, mutex, .. } => {
                format!("thread {t} waiting on condvar {cv} (mutex {mutex}) with no notifier left")
            }
            Blocked::Join(target) => format!("thread {t} joining unfinished thread {target}"),
            Blocked::Runnable | Blocked::Finished => continue,
        };
        parts.push(part);
    }
    format!("deadlock: {}", parts.join("; "))
}

fn is_abort_payload(payload: &(dyn std::any::Any + Send)) -> bool {
    payload.downcast_ref::<&str>() == Some(&ABORT)
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

// ---------------------------------------------------------------------------
// Exploration driver
// ---------------------------------------------------------------------------

/// Exploration parameters. The defaults fully explore small (2–4 thread)
/// closures under a preemption bound of 2 and then sample random
/// schedules, in well under a second per scenario.
#[derive(Clone, Debug)]
pub struct Config {
    /// Maximum preemptive context switches per DFS schedule (Musuvathi &
    /// Qadeer's bound). Spurious/timeout wake injections count too.
    pub preemption_bound: u32,
    /// Cap on DFS schedules before falling through to random sampling.
    pub max_schedules: u64,
    /// Seeded random schedules to run after (or instead of the tail of)
    /// DFS.
    pub random_samples: u64,
    /// Base seed for the random phase; sample `k` uses
    /// `rng::derive_seed(seed, k)`.
    pub seed: u64,
    /// Per-schedule budget of injected spurious/timeout wakes, so random
    /// schedules cannot livelock a waiter forever.
    pub wake_budget: u32,
    /// Per-schedule yield-point budget; exceeding it fails the schedule
    /// (livelock detector of last resort).
    pub max_ops: u64,
    /// Replay exactly this decision sequence (one schedule, no search).
    pub replay: Option<Vec<usize>>,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            preemption_bound: 2,
            max_schedules: 2_000,
            random_samples: 64,
            seed: 0x5EED_CAFE,
            wake_budget: 8,
            max_ops: 20_000,
            replay: None,
        }
    }
}

impl Config {
    /// Default config, honoring a `SMART_SYNC_SCHEDULE` replay string from
    /// the environment (the panic message of a failing run tells you what
    /// to export).
    pub fn from_env() -> Config {
        // lint:allow(side-effects) test-only replay knob: reading the schedule string here is what makes failing model runs reproducible from the shell
        let replay = std::env::var("SMART_SYNC_SCHEDULE")
            .ok()
            .and_then(|s| parse_schedule(&s));
        Config {
            replay,
            ..Config::default()
        }
    }
}

/// Outcome of [`explore`].
#[derive(Clone, Debug)]
pub struct Report {
    /// Total schedules executed (DFS + random).
    pub schedules: u64,
    /// Schedules executed by the bounded-DFS phase.
    pub dfs_schedules: u64,
    /// Whether DFS exhausted the bounded tree (rather than hitting
    /// `max_schedules`).
    pub dfs_complete: bool,
    /// First failing schedule, if any (exploration stops at the first).
    pub failure: Option<Failure>,
}

fn run_once<F: Fn()>(config: &Config, policy: Policy, f: &F) -> (Vec<Point>, Option<Failure>) {
    let sched = Arc::new(Scheduler::new(config, policy));
    let main_tid = sched.register_thread();
    {
        let mut st = sched.lock_state();
        st.current = Some(main_tid);
    }
    CTX.with(|c| {
        *c.borrow_mut() = Some(Ctx {
            sched: Arc::clone(&sched),
            tid: main_tid,
        });
    });
    let result = panic::catch_unwind(AssertUnwindSafe(f));
    CTX.with(|c| *c.borrow_mut() = None);
    let mut st = sched.lock_state();
    if let Err(payload) = result {
        if st.failure.is_none() && !is_abort_payload(payload.as_ref()) {
            let message = format!("panic in model run: {}", panic_message(payload.as_ref()));
            let schedule = schedule_string(&st.points);
            st.failure = Some(Failure { message, schedule });
        }
    }
    (st.points.clone(), st.failure.clone())
}

/// Next DFS prefix: backtrack to the deepest point with an untried option
/// admissible under the preemption bound.
fn next_prefix(points: &[Point], bound: u32) -> Option<Vec<usize>> {
    for i in (0..points.len()).rev() {
        let p = &points[i];
        for j in (p.chosen + 1)..p.n {
            let cost = u32::from(j >= p.first_preemptive);
            if p.preemptions_before + cost <= bound {
                let mut prefix: Vec<usize> = points[..i].iter().map(|q| q.chosen).collect();
                prefix.push(j);
                return Some(prefix);
            }
        }
    }
    None
}

/// Run `f` under every bounded interleaving (then random samples) and
/// report. Stops at the first failing schedule.
///
/// The closure runs many times and must be restartable: create all shared
/// state inside it.
pub fn explore<F: Fn()>(config: &Config, f: F) -> Report {
    if let Some(replay) = &config.replay {
        let (_, failure) = run_once(config, Policy::Scripted(replay.clone()), &f);
        return Report {
            schedules: 1,
            dfs_schedules: 1,
            dfs_complete: false,
            failure,
        };
    }
    let mut prefix: Vec<usize> = Vec::new();
    let mut dfs_schedules = 0u64;
    let mut dfs_complete = false;
    loop {
        let (points, failure) = run_once(config, Policy::Scripted(prefix), &f);
        dfs_schedules += 1;
        if failure.is_some() {
            return Report {
                schedules: dfs_schedules,
                dfs_schedules,
                dfs_complete: false,
                failure,
            };
        }
        match next_prefix(&points, config.preemption_bound) {
            Some(next) if dfs_schedules < config.max_schedules => prefix = next,
            Some(_) => break,
            None => {
                dfs_complete = true;
                break;
            }
        }
    }
    let mut schedules = dfs_schedules;
    for k in 0..config.random_samples {
        let rng = StdRng::seed_from_u64(rng::derive_seed(config.seed, k));
        let (_, failure) = run_once(config, Policy::Random(rng), &f);
        schedules += 1;
        if failure.is_some() {
            return Report {
                schedules,
                dfs_schedules,
                dfs_complete,
                failure,
            };
        }
    }
    Report {
        schedules,
        dfs_schedules,
        dfs_complete,
        failure: None,
    }
}

/// [`explore`] and panic on any failing schedule, printing the schedule
/// string and how to replay it. Returns the report on success so tests can
/// assert coverage.
pub fn check<F: Fn()>(name: &str, config: &Config, f: F) -> Report {
    let report = explore(config, f);
    if let Some(failure) = &report.failure {
        panic!(
            "model check '{name}' failed after {} schedule(s): {}\n  \
             failing schedule: \"{}\"\n  \
             replay: SMART_SYNC_SCHEDULE=\"{}\" cargo test -p smart-sync --features model {name}",
            report.schedules, failure.message, failure.schedule, failure.schedule
        );
    }
    report
}

// ---------------------------------------------------------------------------
// Shim types (model flavor)
// ---------------------------------------------------------------------------

/// Per-object registration: which scheduler run this object belongs to and
/// the id it was assigned there. Objects created before the run (or in a
/// previous run) lazily re-register on first touch.
struct Registration {
    reg: StdMutex<(u64, usize)>,
}

impl Registration {
    const fn new() -> Registration {
        Registration {
            reg: StdMutex::new((0, 0)),
        }
    }

    fn id_for(&self, ctx: &Ctx, alloc: impl FnOnce() -> usize) -> usize {
        let mut reg = self.reg.lock().unwrap_or_else(PoisonError::into_inner);
        if reg.0 != ctx.sched.run_token {
            *reg = (ctx.sched.run_token, alloc());
        }
        reg.1
    }
}

/// Model-checked mutex: the std API, with every acquire/release a recorded
/// scheduler decision. Outside a model run it behaves exactly like
/// `std::sync::Mutex`.
pub struct Mutex<T> {
    registration: Registration,
    real: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Create an unlocked mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            registration: Registration::new(),
            real: StdMutex::new(value),
        }
    }

    fn mid(&self, ctx: &Ctx) -> usize {
        self.registration.id_for(ctx, || ctx.sched.new_mutex())
    }

    /// Acquire, blocking (in model runs: parking until scheduled). Poison
    /// semantics mirror `std`.
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        match current_ctx() {
            Some(ctx) => {
                let mid = self.mid(&ctx);
                ctx.sched.op_lock(ctx.tid, mid);
                let (inner, poisoned) = self.take_real();
                let guard = MutexGuard {
                    lock: self,
                    inner: Some(inner),
                    model: Some((ctx, mid)),
                };
                if poisoned {
                    Err(PoisonError::new(guard))
                } else {
                    Ok(guard)
                }
            }
            None => match self.real.lock() {
                Ok(inner) => Ok(MutexGuard {
                    lock: self,
                    inner: Some(inner),
                    model: None,
                }),
                Err(e) => Err(PoisonError::new(MutexGuard {
                    lock: self,
                    inner: Some(e.into_inner()),
                    model: None,
                })),
            },
        }
    }

    /// Grab the real (inner) lock after the scheduler granted it: must be
    /// free, because only one model thread runs at a time.
    fn take_real(&self) -> (std::sync::MutexGuard<'_, T>, bool) {
        match self.real.try_lock() {
            Ok(g) => (g, false),
            Err(TryLockError::Poisoned(e)) => (e.into_inner(), true),
            Err(TryLockError::WouldBlock) => {
                unreachable!("model scheduler granted a mutex that is still held")
            }
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

/// Guard for the model [`Mutex`]. Dropping it releases the lock and yields
/// to the scheduler.
pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
    inner: Option<std::sync::MutexGuard<'a, T>>,
    model: Option<(Ctx, usize)>,
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard accessed after teardown")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard accessed after teardown")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the real lock first so the next scheduled thread's
        // try_lock succeeds, then tell the scheduler.
        drop(self.inner.take());
        if let Some((ctx, mid)) = self.model.take() {
            ctx.sched.op_unlock(ctx.tid, mid);
        }
    }
}

/// Dismantle a guard without running its `Drop` (for `Condvar::wait`,
/// which hands the lock back to the scheduler itself).
fn guard_into_parts<T>(
    mut guard: MutexGuard<'_, T>,
) -> (
    &Mutex<T>,
    Option<std::sync::MutexGuard<'_, T>>,
    Option<(Ctx, usize)>,
) {
    let lock = guard.lock;
    let inner = guard.inner.take();
    let model = guard.model.take();
    std::mem::forget(guard);
    (lock, inner, model)
}

/// Result of a timed wait — same `timed_out()` surface as
/// `std::sync::WaitTimeoutResult`, constructible by the model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// `true` when the wait ended because the timeout elapsed (in model
    /// runs: because the scheduler chose to fire the timeout).
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Model-checked condition variable. Waits park in the scheduler, which
/// may resume them by notify, by an injected spurious wake, or (for timed
/// waits) by firing the timeout — each a recorded, replayable decision.
pub struct Condvar {
    registration: Registration,
    real: StdCondvar,
}

impl Default for Condvar {
    fn default() -> Condvar {
        Condvar::new()
    }
}

impl Condvar {
    /// Create a condition variable.
    pub const fn new() -> Condvar {
        Condvar {
            registration: Registration::new(),
            real: StdCondvar::new(),
        }
    }

    fn cvid(&self, ctx: &Ctx) -> usize {
        self.registration.id_for(ctx, || ctx.sched.new_condvar())
    }

    fn wait_model<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        timed: bool,
    ) -> (LockResult<MutexGuard<'a, T>>, bool) {
        let (lock, inner, model) = guard_into_parts(guard);
        match model {
            Some((ctx, mid)) => {
                let cvid = self.cvid(&ctx);
                drop(inner); // release the real lock before parking
                let kind = ctx.sched.op_wait(ctx.tid, cvid, mid, timed);
                let (real, poisoned) = lock.take_real();
                let guard = MutexGuard {
                    lock,
                    inner: Some(real),
                    model: Some((ctx, mid)),
                };
                let timed_out = kind == WakeKind::Timeout;
                if poisoned {
                    (Err(PoisonError::new(guard)), timed_out)
                } else {
                    (Ok(guard), timed_out)
                }
            }
            None => {
                // Fallback: a real wait on the real condvar. Timed waits
                // use a short real timeout purely to stay responsive.
                let inner = inner.expect("guard accessed after teardown");
                let rebuild = |g| MutexGuard {
                    lock,
                    inner: Some(g),
                    model: None,
                };
                if timed {
                    // lint:allow(condvar-loop) this IS the shim's wait
                    // forwarder: the predicate loop is the caller's
                    // obligation, enforced by this same rule at their site
                    match self.real.wait_timeout(inner, Duration::from_millis(50)) {
                        Ok((g, t)) => (Ok(rebuild(g)), t.timed_out()),
                        Err(e) => {
                            let (g, t) = e.into_inner();
                            (Err(PoisonError::new(rebuild(g))), t.timed_out())
                        }
                    }
                } else {
                    // lint:allow(condvar-loop) same forwarder as above: the
                    // loop lives at the caller, where this rule checks it
                    match self.real.wait(inner) {
                        Ok(g) => (Ok(rebuild(g)), false),
                        Err(e) => (Err(PoisonError::new(rebuild(e.into_inner()))), false),
                    }
                }
            }
        }
    }

    /// Park until notified (or spuriously woken — in model runs that is an
    /// explicit scheduler choice, so `if`-guarded waits are caught).
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        let (result, _) = self.wait_model(guard, false);
        result
    }

    /// Park until notified, spuriously woken, or the timeout fires. In
    /// model runs the duration is ignored: the timeout firing is a
    /// scheduler choice (and the rescue that keeps timed waiters from
    /// deadlocking).
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        _dur: Duration,
    ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
        let (result, timed_out) = self.wait_model(guard, true);
        let wtr = WaitTimeoutResult { timed_out };
        match result {
            Ok(g) => Ok((g, wtr)),
            Err(e) => Err(PoisonError::new((e.into_inner(), wtr))),
        }
    }

    /// Wake one waiter (model: the lowest-tid waiter, deterministically).
    pub fn notify_one(&self) {
        self.real.notify_one();
        if let Some(ctx) = current_ctx() {
            let cvid = self.cvid(&ctx);
            ctx.sched.op_notify(ctx.tid, cvid, false);
        }
    }

    /// Wake every waiter.
    pub fn notify_all(&self) {
        self.real.notify_all();
        if let Some(ctx) = current_ctx() {
            let cvid = self.cvid(&ctx);
            ctx.sched.op_notify(ctx.tid, cvid, true);
        }
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

/// Model-checked atomics: every access is a yield point (the value itself
/// is held in a real std atomic).
pub mod atomic {
    use super::current_ctx;

    pub use std::sync::atomic::Ordering;

    macro_rules! model_atomic {
        ($name:ident, $real:ty, $prim:ty) => {
            /// Model-checked atomic: same API subset as the std type, with
            /// every access a scheduler yield point.
            pub struct $name {
                real: $real,
            }

            impl $name {
                /// Create with an initial value.
                pub const fn new(value: $prim) -> $name {
                    $name {
                        real: <$real>::new(value),
                    }
                }

                fn yield_point(&self) {
                    if let Some(ctx) = current_ctx() {
                        ctx.sched.op_yield(ctx.tid);
                    }
                }

                /// Atomic load (a scheduler yield point in model runs).
                pub fn load(&self, order: Ordering) -> $prim {
                    self.yield_point();
                    self.real.load(order)
                }

                /// Atomic store (a scheduler yield point in model runs).
                pub fn store(&self, value: $prim, order: Ordering) {
                    self.yield_point();
                    self.real.store(value, order);
                }

                /// Atomic swap (a scheduler yield point in model runs).
                pub fn swap(&self, value: $prim, order: Ordering) -> $prim {
                    self.yield_point();
                    self.real.swap(value, order)
                }
            }
        };
    }

    model_atomic!(AtomicBool, std::sync::atomic::AtomicBool, bool);
    model_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);
    model_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);

    impl AtomicU64 {
        /// Atomic add, returning the previous value (a scheduler yield
        /// point in model runs).
        pub fn fetch_add(&self, value: u64, order: Ordering) -> u64 {
            self.yield_point();
            self.real.fetch_add(value, order)
        }
    }

    impl AtomicUsize {
        /// Atomic add, returning the previous value (a scheduler yield
        /// point in model runs).
        pub fn fetch_add(&self, value: usize, order: Ordering) -> usize {
            self.yield_point();
            self.real.fetch_add(value, order)
        }
    }
}

/// Model-checked scoped threads: `std::thread::scope` with spawn/join as
/// scheduler decisions.
pub mod thread {
    use std::cell::RefCell;
    use std::panic::{self, AssertUnwindSafe};
    use std::sync::Arc;

    use super::{current_ctx, Aborted, Ctx, ABORT, CTX};

    /// Scope handle passed to the [`scope`] closure. Unlike
    /// `std::thread::Scope` this wrapper is not `Sync`: spawn only from
    /// the thread that owns the scope (all workspace call sites do).
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
        ctx: Option<Ctx>,
        spawned: RefCell<Vec<usize>>,
    }

    /// Handle to a scoped model thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, Result<T, Aborted>>,
        tid: Option<usize>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Wait for the thread (a scheduler decision in model runs) and
        /// return its closure's value.
        pub fn join(self) -> std::thread::Result<T> {
            if let (Some(target), Some(ctx)) = (self.tid, current_ctx()) {
                ctx.sched.op_join(ctx.tid, target);
            }
            match self.inner.join() {
                Ok(Ok(value)) => Ok(value),
                // The child was torn down by a failure elsewhere; tear the
                // joiner down too.
                Ok(Err(Aborted)) => panic::panic_any(ABORT),
                Err(payload) => Err(payload),
            }
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread inside the scope. In model runs the spawn is a
        /// yield point and the child starts parked until scheduled.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce() -> T + Send + 'scope,
            T: Send + 'scope,
        {
            match &self.ctx {
                None => ScopedJoinHandle {
                    inner: self.inner.spawn(move || Ok(f())),
                    tid: None,
                },
                Some(ctx) => {
                    let tid = ctx.sched.register_thread();
                    self.spawned.borrow_mut().push(tid);
                    let child_ctx = Ctx {
                        sched: Arc::clone(&ctx.sched),
                        tid,
                    };
                    let inner = self.inner.spawn(move || {
                        CTX.with(|c| *c.borrow_mut() = Some(child_ctx.clone()));
                        // op_start is inside the catch: if the schedule
                        // already failed it panics the sentinel, which
                        // must not escape the OS thread.
                        let result = panic::catch_unwind(AssertUnwindSafe(|| {
                            child_ctx.sched.op_start(tid);
                            f()
                        }));
                        CTX.with(|c| *c.borrow_mut() = None);
                        match result {
                            Ok(value) => {
                                child_ctx.sched.op_finish(tid);
                                Ok(value)
                            }
                            Err(payload) => {
                                // Any child panic (other than the teardown
                                // sentinel) fails the schedule; either way
                                // the thread exits cleanly so the real
                                // scope join cannot double-panic.
                                child_ctx.sched.fail_from_panic(payload.as_ref());
                                child_ctx.sched.op_finish(tid);
                                Err(Aborted)
                            }
                        }
                    });
                    // Yield so the scheduler can run the child before the
                    // spawner's next step.
                    ctx.sched.op_yield(ctx.tid);
                    ScopedJoinHandle {
                        inner,
                        tid: Some(tid),
                    }
                }
            }
        }
    }

    /// Model flavor of `std::thread::scope`: on scope exit every spawned
    /// thread is model-joined (so children get scheduled to completion),
    /// and a panic escaping the closure fails the schedule before
    /// unwinding.
    pub fn scope<'env, F, R>(f: F) -> R
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        let ctx = current_ctx();
        std::thread::scope(|inner| {
            let scope = Scope {
                inner,
                ctx: ctx.clone(),
                spawned: RefCell::new(Vec::new()),
            };
            let result = panic::catch_unwind(AssertUnwindSafe(|| f(&scope)));
            match result {
                Ok(value) => {
                    if let Some(ctx) = &scope.ctx {
                        for &tid in scope.spawned.borrow().iter() {
                            ctx.sched.op_join(ctx.tid, tid);
                        }
                    }
                    value
                }
                Err(payload) => {
                    // Record the failure (and broadcast) before unwinding:
                    // parked children wake, sentinel-panic, and exit
                    // cleanly, so the real scope join below never hangs.
                    if let Some(ctx) = &scope.ctx {
                        ctx.sched.fail_from_panic(payload.as_ref());
                    }
                    panic::resume_unwind(payload)
                }
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_schedule_round_trips() {
        assert_eq!(parse_schedule(""), Some(vec![]));
        assert_eq!(parse_schedule("1.0.2"), Some(vec![1, 0, 2]));
        assert_eq!(parse_schedule("  3.4 "), Some(vec![3, 4]));
        assert_eq!(parse_schedule("x.1"), None);
    }

    #[test]
    fn single_threaded_closure_explores_one_schedule() {
        let report = explore(&Config::default(), || {
            let m = Mutex::new(0);
            *m.lock().unwrap() += 1;
            assert_eq!(*m.lock().unwrap(), 1);
        });
        assert!(report.failure.is_none());
        assert!(report.dfs_complete);
        // One DFS schedule (no choice points) plus the random samples.
        assert_eq!(report.dfs_schedules, 1);
    }

    #[test]
    fn double_lock_is_detected() {
        let report = explore(&Config::default(), || {
            let m = Mutex::new(0);
            let _a = m.lock().unwrap();
            let _b = m.lock().unwrap(); // deadlocks a real build; the model names it
        });
        let failure = report.failure.expect("double-lock must be caught");
        assert!(
            failure.message.contains("double-lock"),
            "unexpected message: {}",
            failure.message
        );
    }

    #[test]
    fn assertion_failures_are_schedule_failures() {
        let report = explore(&Config::default(), || {
            assert_eq!(1 + 1, 3, "deliberately false");
        });
        let failure = report.failure.expect("assert must fail the schedule");
        assert!(failure.message.contains("deliberately false"));
    }

    #[test]
    fn fallback_without_scheduler_behaves_like_std() {
        // No explore(): this very test thread has no model context, so the
        // shim must act as plain std::sync.
        let m = Mutex::new(5);
        {
            let mut g = m.lock().unwrap();
            *g += 1;
        }
        assert_eq!(*m.lock().unwrap(), 6);
        let cv = Condvar::new();
        cv.notify_all(); // no waiters, no scheduler: must not hang
        let flag = atomic::AtomicBool::new(false);
        flag.store(true, atomic::Ordering::SeqCst);
        assert!(flag.load(atomic::Ordering::SeqCst));
    }
}
