//! Bounded hand-off primitives for the sharded reader/worker/merger
//! pipeline: a FIFO work queue with backpressure and a windowed reorder
//! buffer that restores file order on the consume side.
//!
//! Both are built on this crate's [`Mutex`] + [`Condvar`] only, so the
//! `model` feature explores their interleavings directly — the FIFO-prefix
//! and abort-wakes-everyone guarantees claimed below are pinned as model
//! tests in `crate::scenarios` (a `model`-feature module), not just
//! argued in comments. Poisoning
//! is survived with `PoisonError::into_inner`: the state these guards
//! protect is a plain queue, valid after any unwinding writer, and the
//! pipeline's abort path needs to keep working even while a worker is
//! panicking.

use std::collections::{BTreeMap, VecDeque};

use crate::{Condvar, Mutex, MutexGuard, PoisonError};

struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
    aborted: bool,
    stalls: u64,
}

/// Blocking FIFO queue with a fixed capacity. Producers stall when it is
/// full (counted), consumers stall when it is empty; `close` drains,
/// `abort` discards.
pub struct BoundedQueue<T> {
    state: Mutex<QueueState<T>>,
    cond: Condvar,
    capacity: usize,
    /// Depth observer called (outside the lock) after every push/pop,
    /// `None` for unobserved queues. The ingest pipeline points this at a
    /// telemetry gauge; keeping it a plain `fn` keeps this crate free of a
    /// telemetry dependency, which is what lets the model checker own the
    /// queues.
    observer: Option<fn(usize)>,
}

impl<T> BoundedQueue<T> {
    /// An unobserved queue holding at most `capacity` items (clamped to
    /// at least 1).
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        BoundedQueue {
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
                aborted: false,
                stalls: 0,
            }),
            cond: Condvar::new(),
            capacity: capacity.max(1),
            observer: None,
        }
    }

    /// A queue that reports its depth to `observer` after every push/pop.
    pub fn observed(capacity: usize, observer: fn(usize)) -> BoundedQueue<T> {
        BoundedQueue {
            observer: Some(observer),
            ..BoundedQueue::new(capacity)
        }
    }

    /// Report `depth`, outside any lock — observers may take their own
    /// locks (the telemetry collector does) and must not nest under ours.
    fn observe_depth(&self, depth: usize) {
        if let Some(observer) = self.observer {
            observer(depth);
        }
    }

    fn lock(&self) -> MutexGuard<'_, QueueState<T>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Block until there is room, then enqueue. Returns `false` when the
    /// queue was aborted (the item is dropped).
    pub fn push(&self, item: T) -> bool {
        let mut s = self.lock();
        while s.items.len() >= self.capacity && !s.aborted {
            s.stalls += 1;
            s = self.cond.wait(s).unwrap_or_else(PoisonError::into_inner);
        }
        if s.aborted {
            return false;
        }
        s.items.push_back(item);
        let depth = s.items.len();
        self.cond.notify_all();
        drop(s);
        self.observe_depth(depth);
        true
    }

    /// Block for the next item. `None` once the queue is closed and
    /// drained, or aborted.
    pub fn pop(&self) -> Option<T> {
        let mut s = self.lock();
        loop {
            if s.aborted {
                return None;
            }
            if let Some(item) = s.items.pop_front() {
                let depth = s.items.len();
                self.cond.notify_all();
                drop(s);
                self.observe_depth(depth);
                return Some(item);
            }
            if s.closed {
                return None;
            }
            s = self.cond.wait(s).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// No more items will be pushed; consumers drain what remains.
    pub fn close(&self) {
        self.lock().closed = true;
        self.cond.notify_all();
    }

    /// Discard queued items and wake everyone; `push` and `pop` both give
    /// up from now on.
    pub fn abort(&self) {
        let mut s = self.lock();
        s.aborted = true;
        s.items.clear();
        self.cond.notify_all();
    }

    /// How many times a producer found the queue full and had to wait.
    pub fn stalls(&self) -> u64 {
        self.lock().stalls
    }
}

/// An index was filed twice in a [`ReorderBuffer`]: either it is still
/// sitting in the window, or it was already consumed. Both mean two
/// producers claimed the same shard — pipeline corruption that previously
/// (pre-detection) silently overwrote the first item's data.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DuplicateIndex(pub usize);

impl std::fmt::Display for DuplicateIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "duplicate reorder index {}", self.0)
    }
}

impl std::error::Error for DuplicateIndex {}

struct ReorderState<T> {
    ready: BTreeMap<usize, T>,
    next: usize,
    total: Option<usize>,
    aborted: bool,
    /// High-water mark of items parked in the window at once — pinned by
    /// tests to the documented bound (`<= capacity`).
    peak_filed: usize,
}

/// Restores index order on the consume side of an out-of-order worker pool.
///
/// Producers `insert(index, item)`; the consumer `take_next` receives items
/// strictly in index order. A producer whose index is more than `capacity`
/// ahead of the consumer blocks — this bounds the number of parsed shards
/// held in memory.
///
/// Deadlock-freedom: work is popped from a FIFO queue, so whenever index
/// `i` is outstanding every smaller outstanding index is held by some other
/// worker. The smallest outstanding index is always inside the window
/// (`capacity >= 1`), so its holder never blocks, the consumer keeps
/// advancing, and every blocked producer is eventually admitted. (The
/// `model` feature checks this claim on real schedules instead of taking
/// the comment's word for it.)
pub struct ReorderBuffer<T> {
    state: Mutex<ReorderState<T>>,
    cond: Condvar,
    capacity: usize,
}

impl<T> ReorderBuffer<T> {
    /// A buffer admitting indices up to `capacity` (clamped to at least 1)
    /// ahead of the consumer.
    pub fn new(capacity: usize) -> ReorderBuffer<T> {
        ReorderBuffer {
            state: Mutex::new(ReorderState {
                ready: BTreeMap::new(),
                next: 0,
                total: None,
                aborted: false,
                peak_filed: 0,
            }),
            cond: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    fn lock(&self) -> MutexGuard<'_, ReorderState<T>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Block until `index` fits in the window, then file the item.
    /// `Ok(false)` when the buffer was aborted (the item is dropped);
    /// `Err(DuplicateIndex)` when `index` was already filed or already
    /// consumed — the item is dropped and the buffer is unchanged, so the
    /// first filing wins.
    pub fn insert(&self, index: usize, item: T) -> Result<bool, DuplicateIndex> {
        let mut s = self.lock();
        while index >= s.next + self.capacity && !s.aborted {
            s = self.cond.wait(s).unwrap_or_else(PoisonError::into_inner);
        }
        if s.aborted {
            return Ok(false);
        }
        if index < s.next || s.ready.contains_key(&index) {
            return Err(DuplicateIndex(index));
        }
        s.ready.insert(index, item);
        s.peak_filed = s.peak_filed.max(s.ready.len());
        self.cond.notify_all();
        Ok(true)
    }

    /// Announce how many items will be inserted in total, unblocking the
    /// consumer's end-of-stream detection.
    pub fn set_total(&self, total: usize) {
        self.lock().total = Some(total);
        self.cond.notify_all();
    }

    /// Block until the next item in index order arrives. `None` once every
    /// announced item has been taken, or on abort.
    pub fn take_next(&self) -> Option<T> {
        let mut s = self.lock();
        loop {
            if s.aborted {
                return None;
            }
            let next = s.next;
            if let Some(item) = s.ready.remove(&next) {
                s.next += 1;
                self.cond.notify_all();
                return Some(item);
            }
            if s.total.is_some_and(|t| next >= t) {
                return None;
            }
            s = self.cond.wait(s).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Discard filed items and wake everyone; `insert` and `take_next`
    /// both give up from now on.
    pub fn abort(&self) {
        let mut s = self.lock();
        s.aborted = true;
        s.ready.clear();
        self.cond.notify_all();
    }

    /// High-water mark of items parked in the window at once. The window
    /// invariant says this never exceeds the construction capacity.
    pub fn peak_filed(&self) -> usize {
        self.lock().peak_filed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn queue_is_fifo_and_drains_after_close() {
        let q = BoundedQueue::new(2);
        assert!(q.push(1));
        assert!(q.push(2));
        q.close();
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn queue_backpressure_counts_stalls() {
        let q = BoundedQueue::new(1);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                for i in 0..50 {
                    assert!(q.push(i));
                }
                q.close();
            });
            let mut got = Vec::new();
            while let Some(i) = q.pop() {
                got.push(i);
            }
            assert_eq!(got, (0..50).collect::<Vec<_>>());
        });
        assert!(q.stalls() > 0, "capacity 1 with 50 items must stall");
    }

    #[test]
    fn observed_queue_reports_depth() {
        static LAST_DEPTH: AtomicUsize = AtomicUsize::new(usize::MAX);
        fn record(depth: usize) {
            LAST_DEPTH.store(depth, Ordering::SeqCst);
        }
        let q: BoundedQueue<u32> = BoundedQueue::observed(4, record);
        assert!(q.push(1));
        assert!(q.push(2));
        assert_eq!(LAST_DEPTH.load(Ordering::SeqCst), 2);
        q.close();
        assert_eq!(q.pop(), Some(1));
        assert_eq!(LAST_DEPTH.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn abort_unblocks_producer() {
        let q = BoundedQueue::new(1);
        assert!(q.push(0));
        std::thread::scope(|scope| {
            let h = scope.spawn(|| q.push(1));
            q.abort();
            assert!(!h.join().unwrap());
        });
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn reorder_emits_in_index_order() {
        let r = ReorderBuffer::new(8);
        r.set_total(3);
        assert_eq!(r.insert(2, "c"), Ok(true));
        assert_eq!(r.insert(0, "a"), Ok(true));
        assert_eq!(r.insert(1, "b"), Ok(true));
        assert_eq!(r.take_next(), Some("a"));
        assert_eq!(r.take_next(), Some("b"));
        assert_eq!(r.take_next(), Some("c"));
        assert_eq!(r.take_next(), None);
        assert_eq!(r.peak_filed(), 3);
    }

    #[test]
    fn reorder_rejects_duplicate_and_consumed_indices() {
        let r = ReorderBuffer::new(4);
        r.set_total(3);
        assert_eq!(r.insert(1, "b"), Ok(true));
        // Still parked in the window: second filing is an error, first wins.
        assert_eq!(r.insert(1, "B"), Err(DuplicateIndex(1)));
        assert_eq!(r.insert(0, "a"), Ok(true));
        assert_eq!(r.take_next(), Some("a"));
        // Already consumed: also an error, not a silent stale overwrite.
        assert_eq!(r.insert(0, "A"), Err(DuplicateIndex(0)));
        assert_eq!(r.take_next(), Some("b"));
        assert_eq!(r.insert(2, "c"), Ok(true));
        assert_eq!(r.take_next(), Some("c"));
        assert_eq!(r.take_next(), None);
    }

    #[test]
    fn reorder_window_blocks_far_ahead_producer() {
        let r = ReorderBuffer::new(2);
        r.set_total(4);
        assert_eq!(r.insert(1, 1), Ok(true));
        std::thread::scope(|scope| {
            // Index 3 is outside the window [0, 2) until the consumer moves.
            let h = scope.spawn(|| r.insert(3, 3));
            assert_eq!(r.insert(0, 0), Ok(true));
            assert_eq!(r.take_next(), Some(0));
            assert_eq!(r.take_next(), Some(1));
            assert_eq!(r.insert(2, 2), Ok(true));
            assert_eq!(h.join().unwrap(), Ok(true));
        });
        assert_eq!(r.take_next(), Some(2));
        assert_eq!(r.take_next(), Some(3));
        assert_eq!(r.take_next(), None);
        assert!(
            r.peak_filed() <= 2,
            "window bound violated: peak {} > capacity 2",
            r.peak_filed()
        );
    }

    #[test]
    fn reorder_abort_unblocks_consumer() {
        let r = ReorderBuffer::<u32>::new(2);
        std::thread::scope(|scope| {
            let h = scope.spawn(|| r.take_next());
            r.abort();
            assert_eq!(h.join().unwrap(), None);
        });
        assert_eq!(r.insert(0, 7), Ok(false));
    }

    #[test]
    fn zero_total_means_immediately_done() {
        let r = ReorderBuffer::<u32>::new(2);
        r.set_total(0);
        assert_eq!(r.take_next(), None);
    }

    /// Fully random arrival orders for the reorder buffer, single-threaded
    /// so the window admission is simulated exactly: at every step either
    /// file a pending index that fits the window (random choice among
    /// them) or consume, with random duplicate filings injected along the
    /// way. Pins index-ordered delivery, the duplicate error path, and the
    /// window-bound accounting.
    #[test]
    fn prop_reorder_random_arrival_orders() {
        rng::prop_check!(|g| {
            let total = g.usize_in(1, 24);
            let capacity = g.usize_in(1, 5);
            let r: ReorderBuffer<usize> = ReorderBuffer::new(capacity);
            r.set_total(total);
            let mut pending = g.permutation(total);
            let mut filed: Vec<usize> = Vec::new();
            let mut taken: Vec<usize> = Vec::new();
            let mut duplicates_hit = 0usize;
            while taken.len() < total {
                let next = taken.len();
                // Indices admissible without blocking: inside [next, next+cap).
                let admissible: Vec<usize> = (0..pending.len())
                    .filter(|&p| pending[p] < next + capacity)
                    .collect();
                // Consuming blocks until index `next` is filed, so with one
                // thread it is only safe once `next` is actually resident.
                let can_take = filed.contains(&next);
                let file_one = !admissible.is_empty() && (!can_take || g.usize_in(0, 2) > 0);
                if file_one {
                    let pick = admissible[g.usize_in(0, admissible.len() - 1)];
                    let index = pending.remove(pick);
                    assert_eq!(r.insert(index, index), Ok(true));
                    filed.push(index);
                    // Re-filing a window-resident index must fail and
                    // leave the buffer unchanged.
                    if g.usize_in(0, 3) == 0 {
                        let dup = filed[g.usize_in(0, filed.len() - 1)];
                        assert_eq!(r.insert(dup, usize::MAX), Err(DuplicateIndex(dup)));
                        duplicates_hit += 1;
                    }
                } else {
                    let got = r.take_next().expect("announced items remain");
                    assert_eq!(got, next, "take_next must deliver in index order");
                    taken.push(got);
                    filed.retain(|&i| i != got);
                    // Re-filing a consumed index is the stale flavor of
                    // the same error.
                    if g.usize_in(0, 3) == 0 {
                        assert_eq!(r.insert(got, usize::MAX), Err(DuplicateIndex(got)));
                        duplicates_hit += 1;
                    }
                }
                assert!(
                    r.peak_filed() <= capacity,
                    "window bound violated: peak {} > capacity {capacity}",
                    r.peak_filed()
                );
            }
            assert_eq!(taken, (0..total).collect::<Vec<_>>());
            assert_eq!(r.take_next(), None, "exactly `total` items delivered");
            let _ = duplicates_hit; // distribution knob, not an assertion target
        });
    }

    /// Item whose `Drop` panics while armed. Clearing a queue that holds one
    /// panics *inside* the critical section, poisoning the mutex — exactly
    /// the hazard `PoisonError::into_inner` exists for.
    struct Bomb {
        armed: bool,
    }

    impl Drop for Bomb {
        fn drop(&mut self) {
            // Don't double-panic while the queue is already unwinding past
            // the sibling items: that would abort the whole process.
            if self.armed && !std::thread::panicking() {
                panic!("bomb dropped");
            }
        }
    }

    #[test]
    fn prop_queue_survives_mutex_poisoning_mid_abort() {
        rng::prop_check!(|g| {
            let capacity = g.usize_in(1, 4);
            let n = g.usize_in(1, capacity);
            let bomb_at = g.usize_in(0, n - 1);
            let q = BoundedQueue::new(capacity);
            for i in 0..n {
                assert!(q.push(Bomb {
                    armed: i == bomb_at
                }));
            }
            // `abort` clears the deque under the lock; the armed bomb's
            // panic unwinds with the guard held and poisons the mutex.
            let aborting = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| q.abort()));
            assert!(aborting.is_err(), "armed bomb must panic during abort");
            // The queue stays usable through the poisoned lock: the abort
            // stuck (it set the flag before clearing), producers are turned
            // away, consumers give up, and telemetry remains readable.
            assert!(!q.push(Bomb { armed: false }));
            assert!(q.pop().is_none());
            let _ = q.stalls();
        });
    }

    #[test]
    fn prop_reorder_survives_mutex_poisoning_mid_abort() {
        rng::prop_check!(|g| {
            let capacity = g.usize_in(1, 4);
            let n = g.usize_in(1, capacity);
            let bomb_at = g.usize_in(0, n - 1);
            let r = ReorderBuffer::new(capacity);
            r.set_total(n + 1); // one index never arrives: consumer must rely on abort
            for i in 0..n {
                assert_eq!(
                    r.insert(
                        i,
                        Bomb {
                            armed: i == bomb_at
                        }
                    ),
                    Ok(true)
                );
            }
            let aborting = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| r.abort()));
            assert!(aborting.is_err(), "armed bomb must panic during abort");
            assert_eq!(r.insert(n, Bomb { armed: false }), Ok(false));
            assert!(r.take_next().is_none());
        });
    }

    /// Drive the full reader → worker-pool → merger shape with workers that
    /// *panic* on randomly chosen shards. Each worker converts its panic to
    /// an indexed error (as the real pipeline converts parse failures); the
    /// merger consumes in index order, so whatever the thread interleaving,
    /// the surfaced error must be the one with the smallest shard index and
    /// every earlier shard must have been merged first. The abort must then
    /// unwind the whole pipeline without deadlock.
    #[test]
    fn prop_worker_panics_abort_cleanly_with_first_error_wins() {
        rng::prop_check!(|g| {
            let total = g.usize_in(2, 24);
            let workers = g.usize_in(1, 4);
            let capacity = g.usize_in(1, 4);
            let n_fail = g.usize_in(1, total.min(3));
            let mut fails = vec![false; total];
            for &i in g.permutation(total).iter().take(n_fail) {
                fails[i] = true;
            }
            let first_error = fails.iter().position(|&f| f).expect("n_fail >= 1");

            let work: BoundedQueue<usize> = BoundedQueue::new(capacity);
            let done: ReorderBuffer<Result<usize, usize>> = ReorderBuffer::new(capacity);
            done.set_total(total);
            let fails = &fails;
            let (merged, surfaced) = std::thread::scope(|scope| {
                scope.spawn(|| {
                    for i in 0..total {
                        if !work.push(i) {
                            return; // abort reached the reader
                        }
                    }
                    work.close();
                });
                for _ in 0..workers {
                    scope.spawn(|| {
                        while let Some(i) = work.pop() {
                            let parsed = std::panic::catch_unwind(|| {
                                if fails[i] {
                                    panic!("injected worker panic on shard {i}");
                                }
                                i
                            });
                            let filed = done
                                .insert(i, parsed.map_err(|_| i))
                                .expect("shard indices from the FIFO queue are unique");
                            if !filed {
                                return; // abort reached this worker
                            }
                        }
                    });
                }
                // Merger on the test thread: strict index order, abort on
                // the first error. The scope exiting at all proves the abort
                // unblocked every reader/worker (else join would hang).
                let mut merged = 0usize;
                let mut surfaced = None;
                while let Some(item) = done.take_next() {
                    match item {
                        Ok(i) => {
                            assert_eq!(i, merged, "merger must see shards in order");
                            merged += 1;
                        }
                        Err(i) => {
                            surfaced = Some(i);
                            work.abort();
                            done.abort();
                            break;
                        }
                    }
                }
                (merged, surfaced)
            });
            assert_eq!(surfaced, Some(first_error), "lowest shard index wins");
            assert_eq!(merged, first_error, "every shard before the error merges");
            assert!(!work.push(total), "work queue refuses after abort");
            assert!(done.take_next().is_none(), "reorder refuses after abort");
        });
    }
}
