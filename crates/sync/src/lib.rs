#![forbid(unsafe_code)]
//! Concurrency shim for the WEFR workspace (DESIGN.md §13).
//!
//! Every hand-rolled concurrent structure in the workspace — the ingest
//! pipeline's [`queue::BoundedQueue`] / [`queue::ReorderBuffer`], the
//! telemetry watchdog's condvar handshake, the metrics listener's shutdown
//! wake — builds on the primitives exported here instead of `std::sync`
//! directly (the `sync-hygiene` lint rule enforces this). The payoff is a
//! single compile-time switch:
//!
//! * **Default build** — everything in this crate is a transparent
//!   re-export of (or zero-cost delegation to) `std::sync`. No wrappers at
//!   runtime, no extra state: behavior, layout, and output are
//!   bit-identical to using `std::sync` directly.
//! * **`--features model`** — [`Mutex`], [`Condvar`], [`atomic`], and
//!   [`thread::scope`] route every acquire, release, wait, notify, load,
//!   store, spawn, and join through a deterministic loom-style scheduler
//!   (the `model` module). Threads still run on real OS threads, but exactly one is
//!   runnable at a time and every switch point is a recorded decision, so a
//!   test closure can be executed under *every* interleaving up to a
//!   preemption bound (DFS) plus seeded random schedules beyond it. The
//!   scheduler detects deadlock, double-lock, lost condvar wakeups, and
//!   user-asserted invariant violations, and serializes any failing run as
//!   a replayable schedule string.
//!
//! The `model` feature is test-only tooling: no production binary enables
//! it, and `scripts/ci.sh` runs the model suite as its own step
//! (`cargo test -p smart-sync --features model`).

#[cfg(feature = "model")]
pub mod fixtures;
#[cfg(feature = "model")]
pub mod model;
pub mod queue;
#[cfg(feature = "model")]
pub mod scenarios;
pub mod shutdown;

/// Lock results and poison errors are `std`'s own types in both modes, so
/// poison-tolerant call sites (`.unwrap_or_else(PoisonError::into_inner)`)
/// compile unchanged with and without `model`.
pub use std::sync::{Arc, LockResult, PoisonError};

#[cfg(not(feature = "model"))]
mod passthrough {
    /// Mutual exclusion — `std::sync::Mutex` itself in the default build.
    pub type Mutex<T> = std::sync::Mutex<T>;
    /// Guard for [`Mutex`] — `std::sync::MutexGuard` itself in the default
    /// build.
    pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
    /// Condition variable — `std::sync::Condvar` itself in the default
    /// build.
    pub type Condvar = std::sync::Condvar;
    /// Result of a timed wait — `std::sync::WaitTimeoutResult` itself in
    /// the default build (the model build supplies its own type with the
    /// same `timed_out()` accessor).
    pub type WaitTimeoutResult = std::sync::WaitTimeoutResult;

    /// Atomics — re-exports of `std::sync::atomic` in the default build.
    pub mod atomic {
        pub use std::sync::atomic::{
            AtomicBool, AtomicU32, AtomicU64, AtomicU8, AtomicUsize, Ordering,
        };
    }

    /// Scoped threads — re-exports of `std::thread`'s scope API in the
    /// default build.
    pub mod thread {
        pub use std::thread::{scope, Scope, ScopedJoinHandle};
    }
}

#[cfg(not(feature = "model"))]
pub use passthrough::{atomic, thread, Condvar, Mutex, MutexGuard, WaitTimeoutResult};

#[cfg(feature = "model")]
pub use model::{atomic, thread, Condvar, Mutex, MutexGuard, WaitTimeoutResult};
