//! CI gate: the model suite's exploration is (a) at least as large as the
//! committed per-scenario schedule floors and (b) bit-deterministic across
//! two runs at the same seed. A scheduler change that silently shrinks the
//! search space — or makes it flaky — fails here instead of letting the
//! model tests pass vacuously.
//!
//! Build with `--features model`; without the feature it compiles to a
//! stub (so `--all-targets` workspace builds stay green) and exits with a
//! message saying so.

#![forbid(unsafe_code)]

#[cfg(feature = "model")]
fn main() {
    use sync::model::Config;

    let config = Config::default();
    let mut failed = false;
    for scenario in sync::scenarios::all() {
        let first = scenario.run(&config);
        let second = scenario.run(&config);
        let deterministic = (first.schedules, first.dfs_schedules, first.dfs_complete)
            == (second.schedules, second.dfs_schedules, second.dfs_complete);
        let covered = first.schedules >= scenario.min_schedules;
        let status = if covered && deterministic {
            "ok"
        } else {
            "FAIL"
        };
        println!(
            "{status:4} {name:44} schedules={schedules:6} (floor {floor:5}) dfs={dfs} complete={complete} deterministic={deterministic}",
            name = scenario.name,
            schedules = first.schedules,
            floor = scenario.min_schedules,
            dfs = first.dfs_schedules,
            complete = first.dfs_complete,
        );
        if !covered {
            eprintln!(
                "check_model_coverage: '{}' explored {} schedules, below the committed floor {}",
                scenario.name, first.schedules, scenario.min_schedules
            );
            failed = true;
        }
        if !deterministic {
            eprintln!(
                "check_model_coverage: '{}' is not deterministic across runs at the same seed",
                scenario.name
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!("check_model_coverage: all scenario floors met, exploration deterministic");
}

#[cfg(not(feature = "model"))]
fn main() {
    eprintln!(
        "check_model_coverage: built without the `model` feature; \
         run `cargo run -p smart-sync --features model --bin check_model_coverage`"
    );
}
