//! Model-checked scenarios pinning the guarantees the production
//! primitives claim (only built with the `model` feature).
//!
//! Each scenario is a closure exercising the *real* ported code —
//! [`crate::queue::BoundedQueue`], [`crate::queue::ReorderBuffer`],
//! [`crate::shutdown::StopFlag`], and the metrics listener's shutdown-wake
//! shape — under [`crate::model::explore`]. The suite runs from
//! `tests/model_suite.rs` and from the `check_model_coverage` bin, which
//! asserts the committed schedule floors below and determinism across
//! runs.

use std::time::Duration;

use crate::atomic::{AtomicBool, Ordering};
use crate::model::{check, Config, Report};
use crate::queue::{BoundedQueue, DuplicateIndex, ReorderBuffer};
use crate::shutdown::StopFlag;
use crate::thread;

/// One named model scenario with its committed coverage floor.
pub struct Scenario {
    /// Test-suite-facing name (matches the `#[test]` wrapper).
    pub name: &'static str,
    /// The exploration must execute at least this many schedules — a
    /// committed floor so a scheduler regression that silently collapses
    /// the search space fails CI instead of passing vacuously. Floors are
    /// pinned to the counts measured at the default [`Config`] (the
    /// exploration is deterministic, so exact equality is reproducible);
    /// re-measure with the `check_model_coverage` bin after any scheduler
    /// or scenario change.
    pub min_schedules: u64,
    runner: fn(&Config) -> Report,
}

impl Scenario {
    /// Explore the scenario, panicking (with a replayable schedule) on any
    /// failing interleaving.
    pub fn run(&self, config: &Config) -> Report {
        (self.runner)(config)
    }
}

/// Every scenario, in a fixed order.
pub fn all() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "queue_fifo_prefix_delivery",
            min_schedules: 244,
            runner: queue_fifo_prefix_delivery,
        },
        Scenario {
            name: "queue_abort_wakes_all_producers",
            min_schedules: 464,
            runner: queue_abort_wakes_all_producers,
        },
        Scenario {
            name: "reorder_delivers_in_index_order",
            min_schedules: 1522,
            runner: reorder_delivers_in_index_order,
        },
        Scenario {
            name: "reorder_duplicate_detected_under_race",
            min_schedules: 150,
            runner: reorder_duplicate_detected_under_race,
        },
        Scenario {
            name: "pipeline_first_error_aborts_everyone",
            min_schedules: 2064,
            runner: pipeline_first_error_aborts_everyone,
        },
        Scenario {
            name: "watchdog_shutdown_always_terminates",
            min_schedules: 82,
            runner: watchdog_shutdown_always_terminates,
        },
        Scenario {
            name: "serve_shutdown_wake_terminates_listener",
            min_schedules: 95,
            runner: serve_shutdown_wake_terminates_listener,
        },
    ]
}

/// FIFO-prefix delivery: whatever the interleaving, the consumer sees
/// exactly the pushed sequence, in order, then end-of-stream after close.
fn queue_fifo_prefix_delivery(config: &Config) -> Report {
    check("queue_fifo_prefix_delivery", config, || {
        let q: BoundedQueue<usize> = BoundedQueue::new(2);
        thread::scope(|scope| {
            scope.spawn(|| {
                for i in 0..3 {
                    assert!(q.push(i), "no abort in this scenario");
                }
                q.close();
            });
            let mut got = Vec::new();
            while let Some(i) = q.pop() {
                got.push(i);
            }
            assert_eq!(got, vec![0, 1, 2], "FIFO delivery violated");
        });
    })
}

/// Abort-on-first-error wakes all workers: two producers parked on a full
/// queue must both observe the abort and return `false` — the scope
/// completing at all proves nobody stayed parked.
fn queue_abort_wakes_all_producers(config: &Config) -> Report {
    check("queue_abort_wakes_all_producers", config, || {
        let q: BoundedQueue<u8> = BoundedQueue::new(1);
        assert!(q.push(0), "filling the queue cannot fail before abort");
        thread::scope(|scope| {
            let a = scope.spawn(|| q.push(1));
            let b = scope.spawn(|| q.push(2));
            q.abort();
            assert!(!a.join().unwrap(), "aborted producer A must give up");
            assert!(!b.join().unwrap(), "aborted producer B must give up");
        });
        assert_eq!(q.pop(), None, "aborted queue yields nothing");
    })
}

/// The reorder window blocks a far-ahead producer without deadlock and the
/// consumer always receives index order.
fn reorder_delivers_in_index_order(config: &Config) -> Report {
    check("reorder_delivers_in_index_order", config, || {
        let r: ReorderBuffer<usize> = ReorderBuffer::new(2);
        r.set_total(3);
        thread::scope(|scope| {
            // Index 2 is outside the window [0, 2) until the consumer
            // advances: this spawn order makes the far-ahead producer
            // first so schedules where it must block are explored.
            scope.spawn(|| assert_eq!(r.insert(2, 20), Ok(true)));
            scope.spawn(|| assert_eq!(r.insert(1, 10), Ok(true)));
            assert_eq!(r.insert(0, 0), Ok(true));
            assert_eq!(r.take_next(), Some(0));
            assert_eq!(r.take_next(), Some(10));
            assert_eq!(r.take_next(), Some(20));
        });
        assert_eq!(r.take_next(), None);
        assert!(
            r.peak_filed() <= 2,
            "window bound violated: peak {}",
            r.peak_filed()
        );
    })
}

/// Two workers racing to file the same shard index: exactly one filing
/// wins and the loser gets `DuplicateIndex`, on every schedule.
fn reorder_duplicate_detected_under_race(config: &Config) -> Report {
    check("reorder_duplicate_detected_under_race", config, || {
        let r: ReorderBuffer<usize> = ReorderBuffer::new(2);
        r.set_total(1);
        thread::scope(|scope| {
            let a = scope.spawn(|| r.insert(0, 1));
            let b = scope.spawn(|| r.insert(0, 2));
            let (ra, rb) = (a.join().unwrap(), b.join().unwrap());
            let oks = [ra, rb].iter().filter(|&&x| x == Ok(true)).count();
            let dups = [ra, rb]
                .iter()
                .filter(|&&x| x == Err(DuplicateIndex(0)))
                .count();
            assert_eq!(
                (oks, dups),
                (1, 1),
                "exactly one filing wins: got {ra:?} / {rb:?}"
            );
        });
        assert!(r.take_next().is_some(), "the winning filing is delivered");
        assert_eq!(r.take_next(), None);
    })
}

/// The full pipeline shape in miniature: a worker error reaches the merger
/// first (index order), the merger aborts both queues, and every thread —
/// reader, worker, merger — unwinds without deadlock.
fn pipeline_first_error_aborts_everyone(config: &Config) -> Report {
    check("pipeline_first_error_aborts_everyone", config, || {
        let work: BoundedQueue<usize> = BoundedQueue::new(1);
        let done: ReorderBuffer<Result<usize, usize>> = ReorderBuffer::new(1);
        done.set_total(2);
        thread::scope(|scope| {
            scope.spawn(|| {
                for i in 0..2 {
                    if !work.push(i) {
                        return; // abort reached the reader
                    }
                }
                work.close();
            });
            scope.spawn(|| {
                while let Some(i) = work.pop() {
                    // Shard 0 "fails to parse": the merger must surface it
                    // and tear the pipeline down.
                    let parsed = if i == 0 { Err(i) } else { Ok(i) };
                    let filed = done.insert(i, parsed).expect("indices unique");
                    if !filed {
                        return; // abort reached the worker
                    }
                }
            });
            let mut surfaced = None;
            while let Some(item) = done.take_next() {
                match item {
                    Ok(i) => panic!("shard {i} merged before the smaller failing index"),
                    Err(i) => {
                        surfaced = Some(i);
                        work.abort();
                        done.abort();
                        break;
                    }
                }
            }
            assert_eq!(surfaced, Some(0), "lowest failing index wins");
        });
    })
}

/// The watchdog handshake ported to [`StopFlag`]: a monitor polling with
/// timed waits always observes `stop()` and terminates — under notify
/// wake, spurious wake, and timeout-fire schedules alike.
fn watchdog_shutdown_always_terminates(config: &Config) -> Report {
    check("watchdog_shutdown_always_terminates", config, || {
        let flag = StopFlag::new();
        thread::scope(|scope| {
            let monitor = scope.spawn(|| {
                let mut ticks = 0u32;
                while !flag.wait_timeout(Duration::from_millis(10)) {
                    // A tick: the real watchdog samples gauges here.
                    ticks += 1;
                    assert!(ticks <= 64, "monitor spinning without observing stop");
                }
                ticks
            });
            flag.stop();
            let _ticks = monitor.join().unwrap();
        });
        assert!(flag.is_stopped());
    })
}

/// The metrics listener's shutdown wake, modeled: the accept loop is a
/// blocking pop, `stop()` is flag-store *then* wake-connect (the order
/// `serve.rs` uses). The listener must exit on every schedule — including
/// the one where it is mid-accept when the flag flips.
fn serve_shutdown_wake_terminates_listener(config: &Config) -> Report {
    check("serve_shutdown_wake_terminates_listener", config, || {
        let conns: BoundedQueue<u8> = BoundedQueue::new(4);
        let stopping = AtomicBool::new(false);
        assert!(conns.push(1), "a client connection is already pending");
        thread::scope(|scope| {
            let listener = scope.spawn(|| {
                let mut handled = 0u32;
                while let Some(_conn) = conns.pop() {
                    if stopping.load(Ordering::SeqCst) {
                        break;
                    }
                    handled += 1; // serve the request
                }
                handled
            });
            // serve.rs shutdown order: raise the flag, then the loopback
            // connect that unblocks accept().
            stopping.store(true, Ordering::SeqCst);
            assert!(conns.push(0), "wake connection");
            let handled = listener.join().unwrap();
            assert!(handled <= 1, "at most the pre-stop connection is served");
        });
        assert!(stopping.load(Ordering::SeqCst));
    })
}
