//! Deliberately broken queue variants that mutation-test the model checker
//! itself (only built with the `model` feature).
//!
//! Each type here reproduces a classic condvar bug the checker claims to
//! catch. `tests/model_suite.rs` asserts that [`crate::model::explore`]
//! *fails* on them within the bounded search — so the checker's power is
//! CI-pinned: a scheduler regression that stopped exploring the relevant
//! interleavings would turn those expected failures into passes and break
//! the build.

use std::collections::VecDeque;

use crate::{Condvar, Mutex, PoisonError};

/// Bug #1 — missing notify: `push` files the item but never signals the
/// condvar, so a consumer that checked before the push sleeps forever.
/// The model checker reports the schedule as a deadlock (parked waiter,
/// no notifier left, no timeout to rescue it).
pub struct MissingNotifyQueue<T> {
    state: Mutex<VecDeque<T>>,
    cond: Condvar,
}

impl<T> Default for MissingNotifyQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> MissingNotifyQueue<T> {
    /// An empty broken queue.
    pub fn new() -> MissingNotifyQueue<T> {
        MissingNotifyQueue {
            state: Mutex::new(VecDeque::new()),
            cond: Condvar::new(),
        }
    }

    /// Enqueue — *without* the notify that a correct queue performs.
    pub fn push(&self, item: T) {
        let mut s = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        s.push_back(item);
        // BUG under test: no self.cond.notify_all() here.
    }

    /// Block until an item is available (predicate correctly re-checked in
    /// a loop; the bug is on the push side).
    pub fn pop(&self) -> T {
        let mut s = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        while s.is_empty() {
            s = self.cond.wait(s).unwrap_or_else(PoisonError::into_inner);
        }
        s.pop_front().expect("loop exits only when non-empty")
    }
}

/// Bug #2 — `if`-guarded wait: `pop` checks its predicate once instead of
/// in a loop, so a spurious wake (or losing a notify-all race to another
/// consumer) dequeues from an empty queue. The model checker injects
/// exactly those wakes as schedule choices and trips the `expect`.
pub struct IfWaitQueue<T> {
    state: Mutex<VecDeque<T>>,
    cond: Condvar,
}

impl<T> Default for IfWaitQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> IfWaitQueue<T> {
    /// An empty broken queue.
    pub fn new() -> IfWaitQueue<T> {
        IfWaitQueue {
            state: Mutex::new(VecDeque::new()),
            cond: Condvar::new(),
        }
    }

    /// Enqueue and (correctly) wake every waiter — the bug is on the pop
    /// side.
    pub fn push(&self, item: T) {
        let mut s = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        s.push_back(item);
        self.cond.notify_all();
    }

    /// BUG under test: the wait is guarded by `if`, not `while`, so the
    /// predicate is not re-checked after waking.
    pub fn pop(&self) -> T {
        let mut s = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if s.is_empty() {
            // lint:allow(condvar-loop) deliberate bug fixture: this if-guarded wait exists so the model checker can prove it catches exactly this mistake
            s = self.cond.wait(s).unwrap_or_else(PoisonError::into_inner);
        }
        s.pop_front()
            .expect("woken with an empty queue: if-guarded wait lost the predicate")
    }
}
