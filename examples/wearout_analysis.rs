//! Wear-out analysis: survival-rate curves over `MWI_N` for all six drive
//! models, with Bayesian change points — the Fig. 1 story on a census.
//!
//! ```text
//! cargo run --example wearout_analysis
//! ```

use smart_changepoint::survival::SurvivalCurve;
use smart_dataset::{Census, DriveModel, FleetConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let census = Census::generate(&FleetConfig::proportional(20_000, 7)?);
    println!(
        "census: {} drives, {} failures\n",
        census.summaries().len(),
        census.n_failures()
    );

    for model in DriveModel::ALL {
        let curve = SurvivalCurve::from_drives(
            census
                .summaries_of_model(model)
                .map(|s| (s.final_mwi_n, s.is_failed())),
            3,
        );
        print!("{model}: ");
        match curve.mwi_range() {
            None => {
                println!("no populated buckets");
                continue;
            }
            Some((lo, hi)) => print!("MWI_N spans {lo}..{hi}; "),
        }
        match curve.detect_change_point_default()? {
            Some(cp) => println!(
                "survival changes significantly at MWI_N = {} (z = {:.1})",
                cp.mwi_threshold, cp.z_score
            ),
            None => println!("no significant change (narrow wear range or flat survival)"),
        }

        // Sketch the curve: mean survival in coarse MWI bands.
        let points = curve.points();
        print!("  survival by band:");
        for chunk in points.chunks(20) {
            let mean: f64 = chunk.iter().map(|p| p.rate).sum::<f64>() / chunk.len() as f64;
            let lo = chunk.last().expect("non-empty chunk").mwi;
            let hi = chunk.first().expect("non-empty chunk").mwi;
            print!("  [{lo:>2}-{hi:>3}] {:.2}", mean);
        }
        println!("\n");
    }
    println!("paper shape: MA1/MA2/MC1 drop below a knee in 20..45; MC2 dips at high MWI\n(early-firmware failures) and again at low MWI; MB1/MB2 stay flat.");
    Ok(())
}
