//! Fleet monitoring: the production scenario from the paper's introduction.
//!
//! A datacenter operator re-checks the wear-out change point weekly
//! (§IV-D), refreshes the selected features when it moves, trains a
//! predictor, and decommissions the drives flagged in the final month.
//!
//! ```text
//! cargo run --example fleet_monitoring
//! ```

use smart_dataset::{DriveModel, Fleet, FleetConfig};
use smart_pipeline::{
    base_matrix, collect_samples, survival_pairs, FailurePredictor, PredictorConfig, SamplingConfig,
};
use wefr_core::{SelectionInput, UpdateMonitor, Wefr};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let days = 365u32;
    let config = FleetConfig::builder()
        .days(days)
        .seed(99)
        .drives(DriveModel::Mc1, 150)
        .failure_scale(8.0)
        .build()?;
    let fleet = Fleet::generate(&config);
    println!(
        "monitoring {} MC1 drives for {days} days",
        fleet.drives().len()
    );

    // --- Weekly change-point monitoring over the operating period ---
    let mut monitor = UpdateMonitor::weekly();
    let wefr = Wefr::default();
    let mut reselections = 0;
    for day in (60..days - 35).step_by(1) {
        if !monitor.due(day) {
            continue;
        }
        let survival = survival_pairs(&fleet, DriveModel::Mc1, day);
        let threshold = wefr_core::wearout::detect_wearout_threshold(
            &survival,
            &smart_changepoint::BocpdConfig::default(),
            smart_changepoint::PAPER_Z_THRESHOLD,
            3,
        )?
        .map(|cp| cp.mwi_threshold);
        let decision = monitor.record_check(day, threshold);
        if decision.requires_reselection() {
            reselections += 1;
            println!("day {day:>3}: {decision:?} -> re-select features");
        }
    }
    println!("{reselections} re-selection events over the window\n");

    // --- Final selection + prediction for the last month ---
    let train_end = days - 31;
    let samples = collect_samples(
        &fleet,
        DriveModel::Mc1,
        0,
        train_end,
        &SamplingConfig::default(),
    )?;
    let (matrix, labels, mwi) = base_matrix(&fleet, DriveModel::Mc1, &samples)?;
    let survival = survival_pairs(&fleet, DriveModel::Mc1, train_end);
    let selection = wefr.select(&SelectionInput {
        data: &matrix,
        labels: &labels,
        mwi_per_sample: Some(&mwi),
        survival: Some(&survival),
    })?;
    let base: Vec<smart_dataset::FeatureId> = selection
        .global
        .selected_names
        .iter()
        .map(|n| n.parse().expect("feature names round-trip"))
        .collect();
    println!("selected features: {:?}", selection.global.selected_names);

    let predictor = FailurePredictor::train(
        &fleet,
        &samples,
        &base,
        &PredictorConfig {
            n_trees: 50,
            ..PredictorConfig::default()
        },
    )?;

    // Flag drives in the final month at a fixed alarm threshold.
    let alarm = 0.5;
    let mut flagged = 0;
    let mut caught = 0;
    let mut missed = 0;
    for drive in fleet.drives_of_model(DriveModel::Mc1) {
        let start = (train_end + 1).max(drive.deploy_day);
        let end = drive.last_day();
        if start > end {
            continue;
        }
        let mut alarm_day = None;
        for day in start..=end {
            if predictor.score_drive_day(drive, day)? >= alarm {
                alarm_day = Some(day);
                break; // first prediction wins (paper §V-A)
            }
        }
        let fails = drive.failure.is_some_and(|f| f.day > train_end);
        match (alarm_day, fails) {
            (Some(day), true) => {
                caught += 1;
                flagged += 1;
                let lead = drive.failure.expect("fails").day - day;
                println!(
                    "  {} flagged on day {day} ({lead} days before failure)",
                    drive.id
                );
            }
            (Some(_), false) => flagged += 1,
            (None, true) => missed += 1,
            (None, false) => {}
        }
    }
    println!(
        "\nfinal month: {flagged} drives flagged, {caught} true failures caught, {missed} missed"
    );
    Ok(())
}
