//! Model comparison: show the paper's motivation — different selectors pick
//! different features, and no single selector is best for every drive model.
//!
//! ```text
//! cargo run --example model_comparison
//! ```

use smart_dataset::{DriveModel, Fleet, FleetConfig};
use smart_pipeline::experiment::SelectorKind;
use smart_pipeline::{base_matrix, collect_samples, SamplingConfig};
use smart_stats::kendall::normalized_kendall_tau_distance;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut builder = FleetConfig::builder().days(365).seed(11).failure_scale(8.0);
    for m in [DriveModel::Ma1, DriveModel::Mb1, DriveModel::Mc1] {
        builder = builder.drives(m, 120);
    }
    let fleet = Fleet::generate(&builder.build()?);

    for model in [DriveModel::Ma1, DriveModel::Mb1, DriveModel::Mc1] {
        let samples = collect_samples(&fleet, model, 0, 364, &SamplingConfig::default())?;
        let (matrix, labels, _) = base_matrix(&fleet, model, &samples)?;
        println!(
            "=== {model} ({} samples, {} features) ===",
            matrix.n_rows(),
            matrix.n_features()
        );

        let mut orders = Vec::new();
        for kind in SelectorKind::ALL {
            let ranking = kind.build(3).rank(&matrix, &labels)?;
            println!(
                "  {:<22} top-3: {}",
                kind.label(),
                ranking.top_names(3).join("  ")
            );
            orders.push(ranking.order().to_vec());
        }

        // How much do the five rankings disagree on this model?
        let mut total = 0.0;
        let mut pairs = 0;
        for i in 0..orders.len() {
            for j in (i + 1)..orders.len() {
                total += normalized_kendall_tau_distance(&orders[i], &orders[j])?;
                pairs += 1;
            }
        }
        println!(
            "  mean pairwise ranking disagreement (normalized Kendall tau): {:.3}\n",
            total / pairs as f64
        );
    }
    println!("Because the selectors disagree — differently on each model — WEFR\nensembles them instead of trusting any single one (paper §III-B).");
    Ok(())
}
