//! Quickstart: simulate a small SSD fleet, run WEFR, train a failure
//! predictor on the selected features, and evaluate it on the final months.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Set `WEFR_LOG=info` (or `debug`) for stage-level tracing on stderr, and
//! `WEFR_TELEMETRY_OUT=<dir>` to redirect the JSON run report (default
//! `results/telemetry_quickstart.json`) and flamegraph. `WEFR_METRICS_ADDR`
//! serves live `/metrics` and `/report` over TCP while the run is in
//! flight, and `WEFR_WATCHDOG_SECS` arms the stall watchdog (DESIGN.md §6).
//! Telemetry never changes stdout or the computed selections.

use smart_dataset::{DriveModel, Fleet, FleetConfig};
use smart_pipeline::evaluate::metrics_at_threshold;
use smart_pipeline::{
    base_features, base_matrix, collect_samples, metrics_at_fixed_recall, score_phase,
    survival_pairs, FailurePredictor, PredictorConfig, SamplingConfig,
};
use wefr_core::{SelectionInput, Wefr};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Live observability plane, all off unless the env knobs are set: a
    // /metrics + /report TCP endpoint and a span-stall watchdog.
    let metrics_server = telemetry::serve::start_from_env("quickstart");
    let watchdog = telemetry::watchdog::start_from_env();

    // 1. Simulate one year of daily SMART logs for 150 MC1 drives.
    let config = FleetConfig::builder()
        .days(365)
        .seed(42)
        .drives(DriveModel::Mc1, 150)
        .failure_scale(8.0)
        .build()?;
    let fleet = Fleet::generate(&config);
    println!(
        "fleet: {} drives, {} failures",
        fleet.drives().len(),
        fleet.n_failures()
    );

    // 2. Collect labeled drive-day samples and the base feature matrix.
    let samples = collect_samples(&fleet, DriveModel::Mc1, 0, 364, &SamplingConfig::default())?;
    let (matrix, labels, mwi) = base_matrix(&fleet, DriveModel::Mc1, &samples)?;
    println!(
        "samples: {} ({} positive), features: {}",
        matrix.n_rows(),
        labels.iter().filter(|&&l| l).count(),
        matrix.n_features()
    );

    // 3. Run WEFR: five rankers in parallel, outlier removal, mean-rank
    //    aggregation, automated count, wear-out grouping.
    let survival = survival_pairs(&fleet, DriveModel::Mc1, 364);
    let wefr = Wefr::default();
    let selection = wefr.select(&SelectionInput {
        data: &matrix,
        labels: &labels,
        mwi_per_sample: Some(&mwi),
        survival: Some(&survival),
    })?;

    println!(
        "\nselected {} of {} features ({:.0}%):",
        selection.global.selected.len(),
        matrix.n_features(),
        selection.global.selected_fraction() * 100.0
    );
    for name in &selection.global.selected_names {
        println!("  {name}");
    }
    for outcome in &selection.global.ensemble.outcomes {
        println!(
            "ranker {:<20} mean Kendall distance {:>7.1} {}",
            outcome.ranker,
            outcome.mean_distance,
            if outcome.kept {
                ""
            } else {
                "(discarded as outlier)"
            }
        );
    }
    match &selection.wearout {
        Some(w) => println!(
            "\nwear-out change point at MWI_N = {}: low group keeps {:?}, high group keeps {:?}",
            w.change_point.mwi_threshold, w.low.selected_names, w.high.selected_names
        ),
        None => println!("\nno wear-out change point at this scale"),
    }

    // 4. Train a Random Forest on the selected features, expanded to the
    //    full learning set, over the first ten months.
    let all_base = base_features(DriveModel::Mc1);
    let selected_base: Vec<_> = selection
        .global
        .selected
        .iter()
        .map(|&c| all_base[c])
        .collect();
    let train_samples =
        collect_samples(&fleet, DriveModel::Mc1, 0, 299, &SamplingConfig::default())?;
    let predictor_config = PredictorConfig {
        n_trees: 40,
        max_depth: 10,
        seed: 7,
        n_threads: None,
        ..PredictorConfig::default()
    };
    let predictor =
        FailurePredictor::train(&fleet, &train_samples, &selected_base, &predictor_config)?;
    println!(
        "\ntrained {} trees on {} samples over {} selected base features",
        predictor_config.n_trees,
        train_samples.len(),
        selected_base.len()
    );

    // 5. Evaluate on the held-out final months: drive-level scoring with a
    //    30-day horizon, at fixed recall when the phase has failures.
    let scores = score_phase(&predictor, &fleet, DriveModel::Mc1, 300, 364, 30)?;
    let metrics = match metrics_at_fixed_recall(&scores, 0.4) {
        Ok((metrics, _threshold)) => metrics,
        // No failed drives in the phase: fall back to a fixed threshold.
        Err(_) => metrics_at_threshold(&scores, 0.5),
    };
    println!(
        "evaluation over {} drives: precision {:.2}, recall {:.2}, F0.5 {:.2} (tp={} fp={} fn={})",
        scores.len(),
        metrics.precision,
        metrics.recall,
        metrics.f_half,
        metrics.tp,
        metrics.fp,
        metrics.fn_
    );

    // Clean-shutdown handshake: both monitors join before the snapshot, so
    // no watchdog tick or scrape races the report below.
    if let Some(w) = watchdog {
        w.stop();
    }
    if let Some(s) = metrics_server {
        eprintln!("metrics endpoint served on {}", s.addr());
        s.stop();
    }

    // Export the telemetry run report and count-weighted flamegraph (no-ops
    // unless an observability knob enabled collection). Stderr only: stdout
    // stays identical with telemetry on or off.
    if let Some(path) = telemetry::write_run_report("quickstart")? {
        eprintln!("telemetry report written to {}", path.display());
    }
    if let Some(path) = telemetry::flame::write_flamegraph("quickstart")? {
        eprintln!("flamegraph written to {}", path.display());
    }
    Ok(())
}
