//! Quickstart: simulate a small SSD fleet, run WEFR, and print the selected
//! learning features.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use smart_dataset::{DriveModel, Fleet, FleetConfig};
use smart_pipeline::{base_matrix, collect_samples, survival_pairs, SamplingConfig};
use wefr_core::{SelectionInput, Wefr};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Simulate one year of daily SMART logs for 150 MC1 drives.
    let config = FleetConfig::builder()
        .days(365)
        .seed(42)
        .drives(DriveModel::Mc1, 150)
        .failure_scale(8.0)
        .build()?;
    let fleet = Fleet::generate(&config);
    println!(
        "fleet: {} drives, {} failures",
        fleet.drives().len(),
        fleet.n_failures()
    );

    // 2. Collect labeled drive-day samples and the base feature matrix.
    let samples = collect_samples(&fleet, DriveModel::Mc1, 0, 364, &SamplingConfig::default())?;
    let (matrix, labels, mwi) = base_matrix(&fleet, DriveModel::Mc1, &samples)?;
    println!(
        "samples: {} ({} positive), features: {}",
        matrix.n_rows(),
        labels.iter().filter(|&&l| l).count(),
        matrix.n_features()
    );

    // 3. Run WEFR: five rankers in parallel, outlier removal, mean-rank
    //    aggregation, automated count, wear-out grouping.
    let survival = survival_pairs(&fleet, DriveModel::Mc1, 364);
    let wefr = Wefr::default();
    let selection = wefr.select(&SelectionInput {
        data: &matrix,
        labels: &labels,
        mwi_per_sample: Some(&mwi),
        survival: Some(&survival),
    })?;

    println!(
        "\nselected {} of {} features ({:.0}%):",
        selection.global.selected.len(),
        matrix.n_features(),
        selection.global.selected_fraction() * 100.0
    );
    for name in &selection.global.selected_names {
        println!("  {name}");
    }
    for outcome in &selection.global.ensemble.outcomes {
        println!(
            "ranker {:<20} mean Kendall distance {:>7.1} {}",
            outcome.ranker,
            outcome.mean_distance,
            if outcome.kept {
                ""
            } else {
                "(discarded as outlier)"
            }
        );
    }
    match &selection.wearout {
        Some(w) => println!(
            "\nwear-out change point at MWI_N = {}: low group keeps {:?}, high group keeps {:?}",
            w.change_point.mwi_threshold, w.low.selected_names, w.high.selected_names
        ),
        None => println!("\nno wear-out change point at this scale"),
    }
    Ok(())
}
