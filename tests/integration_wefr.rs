//! End-to-end integration: fleet simulation → base matrix → WEFR selection
//! recovers the failure-mechanism features the simulator planted.

use smart_dataset::{DriveModel, Fleet, FleetConfig};
use smart_pipeline::{base_matrix, collect_samples, survival_pairs, SamplingConfig};
use wefr_core::{SelectionInput, Wefr};

fn mc1_fleet(seed: u64) -> Fleet {
    let config = FleetConfig::builder()
        .days(365)
        .seed(seed)
        .drives(DriveModel::Mc1, 150)
        .failure_scale(8.0)
        .build()
        .expect("valid config");
    Fleet::generate(&config)
}

fn select(fleet: &Fleet) -> wefr_core::WefrSelection {
    let samples = collect_samples(fleet, DriveModel::Mc1, 0, 364, &SamplingConfig::default())
        .expect("samples exist");
    let (matrix, labels, mwi) = base_matrix(fleet, DriveModel::Mc1, &samples).expect("matrix");
    let survival = survival_pairs(fleet, DriveModel::Mc1, 364);
    Wefr::default()
        .select(&SelectionInput {
            data: &matrix,
            labels: &labels,
            mwi_per_sample: Some(&mwi),
            survival: Some(&survival),
        })
        .expect("selection succeeds")
}

#[test]
fn wefr_recovers_mc1_mechanism_features() {
    let fleet = mc1_fleet(1);
    let selection = select(&fleet);

    // MC1 failures are driven by media-scan and uncorrectable errors
    // (OCE/UCE signatures). The selected set must include at least one of
    // the signature counters, and the top of the ranking must be
    // mechanism-related, not noise.
    let names = &selection.global.selected_names;
    assert!(
        names
            .iter()
            .any(|n| n.starts_with("OCE") || n.starts_with("UCE")),
        "selected = {names:?}"
    );
    // The selection must actually cut something.
    assert!(selection.global.selected_fraction() < 1.0);
    assert!(!names.is_empty());
}

#[test]
fn wefr_keeps_most_rankers() {
    let fleet = mc1_fleet(2);
    let selection = select(&fleet);
    let kept = selection
        .global
        .ensemble
        .outcomes
        .iter()
        .filter(|o| o.kept)
        .count();
    // The 1.96-sigma rule discards at most a clear minority.
    assert!(kept >= 4, "kept = {kept}");
}

#[test]
fn trivial_features_rank_last() {
    let fleet = mc1_fleet(3);
    let selection = select(&fleet);
    let ensemble = &selection.global.ensemble;
    // PSC (pending sectors, pure noise in the simulator) must not be a
    // top-3 feature.
    let top3: Vec<&str> = ensemble.top_names(3);
    assert!(
        !top3.iter().any(|n| n.starts_with("PSC")),
        "top3 = {top3:?}"
    );
}

#[test]
fn selection_survives_label_noise() {
    // Flipping a small fraction of labels must not topple the ensemble:
    // the top feature family should stay mechanism-related.
    let fleet = mc1_fleet(4);
    let samples =
        collect_samples(&fleet, DriveModel::Mc1, 0, 364, &SamplingConfig::default()).unwrap();
    let (matrix, mut labels, _) = base_matrix(&fleet, DriveModel::Mc1, &samples).unwrap();
    for i in (0..labels.len()).step_by(29) {
        labels[i] = !labels[i];
    }
    let selection = Wefr::default()
        .select(&SelectionInput::basic(&matrix, &labels))
        .unwrap();
    let top5: Vec<&str> = selection.global.ensemble.top_names(5);
    assert!(
        top5.iter()
            .any(|n| { n.starts_with("OCE") || n.starts_with("UCE") || n.starts_with("CMDT") }),
        "top5 after noise = {top5:?}"
    );
}
