//! End-to-end pipeline integration: the full method matrix runs on a small
//! fleet and produces sane, comparable metrics.

use smart_dataset::{DriveModel, Fleet, FleetConfig};
use smart_pipeline::experiment::{
    run_method, run_percentage_sweep, run_updating_comparison, ExperimentConfig, Method,
    SelectorKind,
};

fn fleet() -> Fleet {
    let config = FleetConfig::builder()
        .days(365)
        .seed(23)
        .drives(DriveModel::Mc1, 150)
        .failure_scale(8.0)
        .build()
        .expect("valid config");
    Fleet::generate(&config)
}

fn exp_config() -> ExperimentConfig {
    ExperimentConfig::quick(3)
}

#[test]
fn method_matrix_produces_sane_metrics() {
    let fleet = fleet();
    let config = exp_config();
    for method in [
        Method::NoSelection,
        Method::Selector {
            kind: SelectorKind::Pearson,
            percent: Some(0.3),
        },
        Method::Wefr,
    ] {
        let r = run_method(&fleet, DriveModel::Mc1, method, &config).expect("method runs");
        assert_eq!(r.per_phase.len(), 3);
        assert!((0.0..=1.0).contains(&r.overall.precision), "{method:?}");
        assert!((0.0..=1.0).contains(&r.overall.recall));
        assert!((0.0..=1.0).contains(&r.overall.f_half));
        // Fixed recall: the pooled recall must be at or above the target
        // (the threshold search guarantees >=).
        assert!(
            r.overall.recall + 1e-9 >= smart_pipeline::paper_target_recall(DriveModel::Mc1),
            "recall {} below target",
            r.overall.recall
        );
    }
}

#[test]
fn selection_beats_no_selection_on_f_half() {
    // The central claim of the paper, at smoke scale: picking the
    // mechanism features cannot be much worse than using everything, and
    // is usually better. Allow slack for small-sample noise.
    let fleet = fleet();
    let config = exp_config();
    let none = run_method(&fleet, DriveModel::Mc1, Method::NoSelection, &config).unwrap();
    let wefr = run_method(&fleet, DriveModel::Mc1, Method::Wefr, &config).unwrap();
    assert!(
        wefr.overall.f_half + 0.12 >= none.overall.f_half,
        "WEFR {:.3} much worse than no-selection {:.3}",
        wefr.overall.f_half,
        none.overall.f_half
    );
    let frac = wefr.selected_fraction.expect("WEFR reports a fraction");
    assert!(frac < 1.0, "WEFR kept everything ({frac})");
}

#[test]
fn percentage_sweep_brackets_wefr() {
    let fleet = fleet();
    let config = exp_config();
    let sweep = run_percentage_sweep(&fleet, DriveModel::Mc1, &config).unwrap();
    assert_eq!(sweep.points.len(), config.tune_grid.len());
    for p in &sweep.points {
        assert!((0.0..=1.0).contains(&p.f_half));
    }
    assert!((0.0..=1.0).contains(&sweep.wefr_percent));
    // WEFR's automated point must be competitive with the sweep (within
    // noise) — the Exp#2 claim.
    let best = sweep
        .points
        .iter()
        .map(|p| p.f_half)
        .fold(f64::NEG_INFINITY, f64::max);
    assert!(
        sweep.wefr_f_half + 0.15 >= best,
        "WEFR {:.3} far below best fixed {best:.3}",
        sweep.wefr_f_half
    );
}

#[test]
fn updating_comparison_runs_on_mc1() {
    let fleet = fleet();
    let config = exp_config();
    let r = run_updating_comparison(&fleet, DriveModel::Mc1, &config).unwrap();
    assert!((0.0..=1.0).contains(&r.wefr_all.precision));
    assert!((0.0..=1.0).contains(&r.no_update_all.precision));
    assert_eq!(r.thresholds.len(), 3);
    // When a change point exists, cohort metrics exist in matched pairs.
    assert_eq!(r.wefr_low.is_some(), r.no_update_low.is_some());
}
