//! Cross-crate determinism: fixed seeds reproduce byte-identical fleets,
//! selections, and experiment metrics; different seeds do not.

use smart_dataset::csv::{export_smart_csv, import_smart_csv};
use smart_dataset::{
    import_smart_csv_sharded, tickets_from_summaries, Census, DriveModel, Fleet, FleetConfig,
    IngestConfig,
};
use smart_pipeline::experiment::{run_method, ExperimentConfig, Method};
use smart_pipeline::{base_matrix, collect_samples, streaming_base_matrix, SamplingConfig};
use smart_trees::{BoostingConfig, ForestConfig, GradientBoosting, RandomForest, SplitStrategy};
use wefr_core::{SelectionInput, Wefr, WefrConfig};

fn config(seed: u64) -> FleetConfig {
    FleetConfig::builder()
        .days(365)
        .seed(seed)
        .drives(DriveModel::Mc1, 100)
        .failure_scale(8.0)
        .build()
        .expect("valid config")
}

#[test]
fn fleet_and_census_are_reproducible() {
    let a = Fleet::generate(&config(7));
    let b = Fleet::generate(&config(7));
    assert_eq!(a, b);
    let ca = Census::generate(&config(7));
    let cb = Census::generate(&config(7));
    assert_eq!(ca, cb);
    let c = Fleet::generate(&config(8));
    assert_ne!(a, c);
}

#[test]
fn selection_is_reproducible_across_runs() {
    let fleet = Fleet::generate(&config(9));
    let samples =
        collect_samples(&fleet, DriveModel::Mc1, 0, 364, &SamplingConfig::default()).unwrap();
    let (matrix, labels, _) = base_matrix(&fleet, DriveModel::Mc1, &samples).unwrap();
    let a = Wefr::default()
        .select(&SelectionInput::basic(&matrix, &labels))
        .unwrap();
    let b = Wefr::default()
        .select(&SelectionInput::basic(&matrix, &labels))
        .unwrap();
    assert_eq!(a, b);
}

#[test]
fn experiment_metrics_are_reproducible() {
    let fleet = Fleet::generate(&config(10));
    let exp_config = ExperimentConfig::quick(5);
    let a = run_method(&fleet, DriveModel::Mc1, Method::NoSelection, &exp_config).unwrap();
    let b = run_method(&fleet, DriveModel::Mc1, Method::NoSelection, &exp_config).unwrap();
    assert_eq!(a.overall, b.overall);
    assert_eq!(a.per_phase, b.per_phase);
}

#[test]
fn sharded_ingest_is_bit_identical_at_any_worker_count() {
    // The headline guarantee of the sharded reader: worker count and shard
    // size are performance knobs, never semantics. Every combination must
    // reproduce the single-threaded import byte for byte.
    let fleet = Fleet::generate(&config(7));
    let tickets = tickets_from_summaries(&fleet.summaries());
    let mut csv = Vec::new();
    export_smart_csv(&fleet, &mut csv).expect("export");
    let single =
        import_smart_csv(csv.as_slice(), &tickets, fleet.config().clone()).expect("import");
    for workers in [1, 2, 4, 8] {
        for shard_rows in [1, 100, 4_096, 1_000_000] {
            let ingest = IngestConfig {
                shard_rows,
                workers,
                ..IngestConfig::default()
            };
            let sharded =
                import_smart_csv_sharded(csv.as_slice(), &tickets, fleet.config().clone(), &ingest)
                    .expect("sharded import");
            assert_eq!(single, sharded, "workers={workers} shard_rows={shard_rows}");
        }
    }
}

#[test]
fn streamed_matrix_and_wefr_selection_match_the_materialised_path() {
    // End to end: streaming shard batches straight into a FeatureMatrix must
    // give WEFR exactly the inputs — and therefore exactly the selected
    // feature set — that the import-everything-then-collect path gives it.
    let fleet = Fleet::generate(&config(9));
    let tickets = tickets_from_summaries(&fleet.summaries());
    let mut csv = Vec::new();
    export_smart_csv(&fleet, &mut csv).expect("export");
    let imported =
        import_smart_csv(csv.as_slice(), &tickets, fleet.config().clone()).expect("import");
    let sampling = SamplingConfig::default();
    let samples = collect_samples(&imported, DriveModel::Mc1, 0, 364, &sampling).unwrap();
    let (matrix, labels, mwi) = base_matrix(&imported, DriveModel::Mc1, &samples).unwrap();

    for workers in [1, 4] {
        let ingest = IngestConfig {
            shard_rows: 500,
            workers,
            ..IngestConfig::default()
        };
        let streamed = streaming_base_matrix(
            csv.as_slice(),
            &tickets,
            DriveModel::Mc1,
            0,
            364,
            &sampling,
            &ingest,
        )
        .expect("streaming matrix");
        assert_eq!(streamed.labels, labels, "workers={workers}");
        assert_eq!(streamed.mwi, mwi, "workers={workers}");
        assert_eq!(
            streamed.matrix.feature_names(),
            matrix.feature_names(),
            "workers={workers}"
        );
        for f in 0..matrix.n_features() {
            assert_eq!(
                streamed.matrix.column(f),
                matrix.column(f),
                "workers={workers} feature {f}"
            );
        }

        let a = Wefr::default()
            .select(&SelectionInput::basic(&streamed.matrix, &streamed.labels))
            .unwrap();
        let b = Wefr::default()
            .select(&SelectionInput::basic(&matrix, &labels))
            .unwrap();
        assert_eq!(
            a.global.selected_names, b.global.selected_names,
            "workers={workers}"
        );
        assert!(!a.global.selected_names.is_empty());
    }
}

/// A small real-fleet training matrix for the split-strategy tests.
fn fleet_matrix() -> (smart_stats::FeatureMatrix, Vec<bool>) {
    let fleet = Fleet::generate(&config(11));
    let samples =
        collect_samples(&fleet, DriveModel::Mc1, 0, 364, &SamplingConfig::default()).unwrap();
    let (matrix, labels, _) = base_matrix(&fleet, DriveModel::Mc1, &samples).unwrap();
    (matrix, labels)
}

#[test]
fn forest_fit_is_bit_identical_across_worker_counts_both_strategies() {
    let (matrix, labels) = fleet_matrix();
    for strategy in [SplitStrategy::Exact, SplitStrategy::Histogram] {
        let fit = |threads: usize| {
            let config = ForestConfig {
                n_trees: 16,
                seed: 3,
                n_threads: Some(threads),
                strategy,
                ..ForestConfig::default()
            };
            RandomForest::fit(&matrix, &labels, &config).unwrap()
        };
        let one = fit(1);
        for threads in [2, 8] {
            let many = fit(threads);
            assert_eq!(one.trees(), many.trees(), "{strategy:?} x{threads}");
            assert_eq!(
                one.predict_proba(&matrix).unwrap(),
                many.predict_proba(&matrix).unwrap(),
                "{strategy:?} x{threads}"
            );
        }
    }
}

#[test]
fn gbt_fit_is_reproducible_both_strategies() {
    // BoostingConfig has no thread knob (rounds are sequential), so the
    // differential here is repeated fits: byte-identical stages and
    // probabilities, for each engine.
    let (matrix, labels) = fleet_matrix();
    for strategy in [SplitStrategy::Exact, SplitStrategy::Histogram] {
        let fit = || {
            let config = BoostingConfig {
                n_rounds: 10,
                seed: 3,
                strategy,
                ..BoostingConfig::default()
            };
            GradientBoosting::fit(&matrix, &labels, &config).unwrap()
        };
        let a = fit();
        let b = fit();
        assert_eq!(a, b, "{strategy:?}");
        assert_eq!(
            a.predict_proba(&matrix).unwrap(),
            b.predict_proba(&matrix).unwrap(),
            "{strategy:?}"
        );
    }
}

#[test]
fn wefr_ranking_matches_between_exact_and_histogram_on_fleet_data() {
    // Restricted to the columns that bin losslessly (≤ 255 distinct values
    // — most SMART counters; the continuous POH/MWI/temperature columns
    // quantize and may legitimately rank differently), the two engines must
    // produce the same aggregated ranking and selection.
    let (full, labels) = fleet_matrix();
    let binned = smart_trees::BinnedMatrix::from_matrix(&full).unwrap();
    let exact_cols: Vec<usize> = (0..full.n_features())
        .filter(|&f| binned.is_exact(f))
        .collect();
    assert!(exact_cols.len() >= 20, "probe: {} exact", exact_cols.len());
    let matrix = smart_stats::FeatureMatrix::from_columns(
        exact_cols
            .iter()
            .map(|&f| full.feature_names()[f].clone())
            .collect(),
        exact_cols
            .iter()
            .map(|&f| full.column(f).to_vec())
            .collect(),
    )
    .unwrap();
    // The Random-Forest ranker must agree ranking-for-ranking: 0/1 labels
    // make every split gain an exact integer ratio, so histogram trees are
    // bit-identical to exact trees here.
    let forest_rank = |strategy: SplitStrategy| {
        let mut ranker = wefr_core::rankers::ForestRanker::with_seed(13);
        ranker.config.strategy = strategy;
        wefr_core::FeatureRanker::rank(&ranker, &matrix, &labels).unwrap()
    };
    assert_eq!(
        forest_rank(SplitStrategy::Exact),
        forest_rank(SplitStrategy::Histogram)
    );

    // End to end, the aggregated WEFR selection must also agree. (The full
    // ensemble *order* may differ in its near-tied tail: the boosting
    // ranker trains on continuous residuals whose sums accumulate in a
    // different order per engine, which can swap essentially-tied noise
    // features — see DESIGN.md on binned training.)
    let select = |strategy: SplitStrategy| {
        let wefr = Wefr::new(WefrConfig {
            seed: 13,
            split_strategy: strategy,
            ..WefrConfig::default()
        });
        wefr.select(&SelectionInput::basic(&matrix, &labels))
            .unwrap()
    };
    let exact = select(SplitStrategy::Exact);
    let hist = select(SplitStrategy::Histogram);
    assert_eq!(exact.global.selected_names, hist.global.selected_names);
    assert!(!exact.global.selected_names.is_empty());
}
