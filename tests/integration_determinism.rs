//! Cross-crate determinism: fixed seeds reproduce byte-identical fleets,
//! selections, and experiment metrics; different seeds do not.

use smart_dataset::{Census, DriveModel, Fleet, FleetConfig};
use smart_pipeline::experiment::{run_method, ExperimentConfig, Method};
use smart_pipeline::{base_matrix, collect_samples, SamplingConfig};
use wefr_core::{SelectionInput, Wefr};

fn config(seed: u64) -> FleetConfig {
    FleetConfig::builder()
        .days(365)
        .seed(seed)
        .drives(DriveModel::Mc1, 100)
        .failure_scale(8.0)
        .build()
        .expect("valid config")
}

#[test]
fn fleet_and_census_are_reproducible() {
    let a = Fleet::generate(&config(7));
    let b = Fleet::generate(&config(7));
    assert_eq!(a, b);
    let ca = Census::generate(&config(7));
    let cb = Census::generate(&config(7));
    assert_eq!(ca, cb);
    let c = Fleet::generate(&config(8));
    assert_ne!(a, c);
}

#[test]
fn selection_is_reproducible_across_runs() {
    let fleet = Fleet::generate(&config(9));
    let samples =
        collect_samples(&fleet, DriveModel::Mc1, 0, 364, &SamplingConfig::default()).unwrap();
    let (matrix, labels, _) = base_matrix(&fleet, DriveModel::Mc1, &samples).unwrap();
    let a = Wefr::default()
        .select(&SelectionInput::basic(&matrix, &labels))
        .unwrap();
    let b = Wefr::default()
        .select(&SelectionInput::basic(&matrix, &labels))
        .unwrap();
    assert_eq!(a, b);
}

#[test]
fn experiment_metrics_are_reproducible() {
    let fleet = Fleet::generate(&config(10));
    let exp_config = ExperimentConfig::quick(5);
    let a = run_method(&fleet, DriveModel::Mc1, Method::NoSelection, &exp_config).unwrap();
    let b = run_method(&fleet, DriveModel::Mc1, Method::NoSelection, &exp_config).unwrap();
    assert_eq!(a.overall, b.overall);
    assert_eq!(a.per_phase, b.per_phase);
}
