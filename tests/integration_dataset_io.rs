//! Dataset I/O integration: CSV export/import round-trips a simulated
//! fleet, and trouble tickets stay consistent with the records.

use smart_dataset::csv::{
    export_smart_csv, export_tickets_csv, import_smart_csv, import_tickets_csv,
};
use smart_dataset::{
    import_smart_csv_sharded, tickets_from_summaries, DriveModel, Fleet, FleetConfig, IngestConfig,
};

fn fleet() -> Fleet {
    let config = FleetConfig::builder()
        .days(180)
        .seed(17)
        .drives(DriveModel::Ma1, 6)
        .drives(DriveModel::Mb2, 6)
        .drives(DriveModel::Mc2, 6)
        .failure_scale(8.0)
        .build()
        .expect("valid config");
    Fleet::generate(&config)
}

#[test]
fn csv_roundtrip_preserves_fleet_structure() {
    let fleet = fleet();
    let tickets = tickets_from_summaries(&fleet.summaries());
    let mut smart_csv = Vec::new();
    export_smart_csv(&fleet, &mut smart_csv).expect("export succeeds");

    let imported =
        import_smart_csv(smart_csv.as_slice(), &tickets, fleet.config().clone()).expect("import");
    assert_eq!(imported.drives().len(), fleet.drives().len());
    assert_eq!(imported.n_failures(), fleet.n_failures());
    for (orig, imp) in fleet.drives().iter().zip(imported.drives()) {
        assert_eq!(orig.id, imp.id);
        assert_eq!(orig.model, imp.model);
        assert_eq!(orig.n_days(), imp.n_days());
        // Spot-check a mid-life day across all of the model's features.
        let day = orig.deploy_day + orig.n_days() / 2;
        for &attr in orig.model.attributes() {
            for kind in smart_dataset::ValueKind::BOTH {
                let f = smart_dataset::FeatureId { attr, kind };
                assert_eq!(orig.value_on(day, f), imp.value_on(day, f), "{f} day {day}");
            }
        }
    }
}

#[test]
fn tickets_match_failed_drives() {
    let fleet = fleet();
    let tickets = tickets_from_summaries(&fleet.summaries());
    assert_eq!(tickets.len(), fleet.n_failures());
    for t in &tickets {
        let drive = &fleet.drives()[t.drive_id.0 as usize];
        assert_eq!(drive.failure.expect("ticketed drive failed").day, t.day);
        assert_eq!(drive.model, t.model);
        assert_eq!(drive.last_day(), t.day, "drives stop reporting at failure");
    }
}

#[test]
fn ticket_csv_is_well_formed() {
    let fleet = fleet();
    let tickets = tickets_from_summaries(&fleet.summaries());
    let mut out = Vec::new();
    export_tickets_csv(&tickets, &mut out).expect("export succeeds");
    let text = String::from_utf8(out).expect("utf8");
    let mut lines = text.lines();
    assert_eq!(lines.next(), Some("drive_id,model,day,mechanism"));
    for (line, ticket) in lines.zip(&tickets) {
        let fields: Vec<&str> = line.split(',').collect();
        assert_eq!(fields.len(), 4);
        assert_eq!(fields[0], ticket.drive_id.0.to_string());
        assert_eq!(fields[2], ticket.day.to_string());
        assert_eq!(fields[3], ticket.mechanism.name());
    }
}

#[test]
fn ticket_csv_roundtrip_preserves_mechanisms() {
    let fleet = fleet();
    let tickets = tickets_from_summaries(&fleet.summaries());
    assert!(!tickets.is_empty(), "fixture fleet has failures");
    let mut out = Vec::new();
    export_tickets_csv(&tickets, &mut out).expect("export succeeds");
    let imported = import_tickets_csv(out.as_slice()).expect("import succeeds");
    assert_eq!(imported, tickets);
}

#[test]
fn sharded_import_matches_single_threaded_on_mixed_models() {
    // The unit tests cover single-model fleets; here the three-model fixture
    // exercises shard cuts across model changes and absent-attribute gaps.
    let fleet = fleet();
    let tickets = tickets_from_summaries(&fleet.summaries());
    let mut csv = Vec::new();
    export_smart_csv(&fleet, &mut csv).expect("export succeeds");
    let single =
        import_smart_csv(csv.as_slice(), &tickets, fleet.config().clone()).expect("import");
    for workers in [1, 3] {
        let config = IngestConfig {
            shard_rows: 64,
            workers,
            ..IngestConfig::default()
        };
        let sharded =
            import_smart_csv_sharded(csv.as_slice(), &tickets, fleet.config().clone(), &config)
                .expect("sharded import");
        assert_eq!(single, sharded, "workers={workers}");
    }
}
