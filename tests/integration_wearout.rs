//! Wear-out behaviour across crates: survival curves from simulated fleets
//! show the paper's change-point structure (knee for MC1, none for MB1).

use smart_changepoint::survival::SurvivalCurve;
use smart_dataset::{Census, DriveModel, FleetConfig};

fn census_for(model: DriveModel, drives: u32, seed: u64) -> Census {
    let config = FleetConfig::builder()
        .days(730)
        .seed(seed)
        .drives(model, drives)
        .failure_scale(4.0)
        .build()
        .expect("valid config");
    Census::generate(&config)
}

fn curve(census: &Census, model: DriveModel) -> SurvivalCurve {
    SurvivalCurve::from_drives(
        census
            .summaries_of_model(model)
            .map(|s| (s.final_mwi_n, s.is_failed())),
        3,
    )
}

#[test]
fn mc1_has_a_low_mwi_change_point() {
    let census = census_for(DriveModel::Mc1, 6000, 1);
    let c = curve(&census, DriveModel::Mc1);
    let cp = c
        .detect_change_point_default()
        .expect("valid config")
        .expect("MC1 must show a wear-out knee");
    // The simulator's MC1 hazard knee is at MWI 30; the paper reports
    // change points between 20 and 45.
    assert!(
        (15..=50).contains(&cp.mwi_threshold),
        "threshold = {}",
        cp.mwi_threshold
    );
}

#[test]
fn mb1_has_no_change_point() {
    let census = census_for(DriveModel::Mb1, 4000, 2);
    let c = curve(&census, DriveModel::Mb1);
    // MB1 wears too slowly for a meaningful MWI range (paper: "no change
    // points due to a small range of MWI_N").
    let (min, max) = c.mwi_range().expect("buckets exist");
    assert!(max - min < 12, "range {min}..{max}");
    assert!(c.detect_change_point_default().unwrap().is_none());
}

#[test]
fn mc2_survival_is_non_monotone() {
    // MC2's early-firmware failures kill young (high final-MWI) drives, so
    // survival near the top of the MWI range dips below the mid-range — the
    // distinctive Fig. 1 shape.
    let census = census_for(DriveModel::Mc2, 8000, 3);
    let c = curve(&census, DriveModel::Mc2);
    let band = |lo: u32, hi: u32| -> f64 {
        let pts: Vec<f64> = c
            .points()
            .iter()
            .filter(|p| (lo..=hi).contains(&p.mwi))
            .map(|p| p.rate)
            .collect();
        assert!(!pts.is_empty(), "no points in {lo}..{hi}");
        pts.iter().sum::<f64>() / pts.len() as f64
    };
    let high_band = band(80, 98); // firmware-era casualties end up here
    let mid_band = band(45, 70);
    let low_band = band(5, 30); // wear-out casualties
    assert!(
        mid_band > high_band,
        "mid {mid_band:.3} must exceed high {high_band:.3}"
    );
    assert!(
        mid_band > low_band,
        "mid {mid_band:.3} must exceed low {low_band:.3}"
    );
}

#[test]
fn worn_drives_fail_more_for_wear_kneed_models() {
    let census = census_for(DriveModel::Mc1, 6000, 4);
    let summaries: Vec<_> = census.summaries_of_model(DriveModel::Mc1).collect();
    let rate = |pred: &dyn Fn(f64) -> bool| {
        let group: Vec<_> = summaries.iter().filter(|s| pred(s.final_mwi_n)).collect();
        group.iter().filter(|s| s.is_failed()).count() as f64 / group.len().max(1) as f64
    };
    let worn = rate(&|m| m < 25.0);
    let fresh = rate(&|m| m > 60.0);
    assert!(worn > 1.5 * fresh, "worn {worn:.3} vs fresh {fresh:.3}");
}
