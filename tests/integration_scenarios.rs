//! Table-driven chaos suite: adversarial fleet scenarios × ingest
//! tolerance modes, end to end through export → (chaos injection) →
//! sharded ingest → sampling → WEFR selection.
//!
//! Every row asserts three invariants:
//!
//! 1. **Fleet determinism** — the ingested fleet is byte-identical at
//!    workers 1 and 4 (compared via CSV export, which prints NaN stably).
//! 2. **Exact skip accounting** — tolerant ingest reports precisely the
//!    injected duplicate/out-of-order/malformed counts, at every worker
//!    count; strict mode reports zero skips on clean input and errors on
//!    corrupted input.
//! 3. **Selection stability** — rows whose corruption is recoverable
//!    (row-level chaos under tolerant ingest) must reproduce the clean
//!    baseline's WEFR selected set exactly; fleet-level perturbations
//!    (firmware re-map, missing vendor batch, churn) must still produce a
//!    deterministic, non-empty selection overlapping the baseline.

use smart_dataset::csv::export_smart_csv;
use smart_dataset::{
    apply_scenario, import_smart_csv_sharded_with_stats, inject_csv_chaos, mixed_vendor_config,
    tickets_from_summaries, CsvChaos, DatasetError, DriveModel, FirmwareRollout, Fleet,
    IngestConfig, IngestTolerance, MissingCoverage, ReplacementChurn, ScenarioConfig, SkipCounts,
    SmartAttribute, TroubleTicket, Vendor,
};
use smart_pipeline::{base_matrix, collect_samples, SamplingConfig};
use wefr_core::{SelectionInput, Wefr};

const DAYS: u32 = 240;
const FLEET_SEED: u64 = 23;
const SCENARIO_SEED: u64 = 9;

/// What a table row expects from ingesting its corrupted CSV.
enum Expect {
    /// Ingest succeeds with exactly these skip counts; when
    /// `recovers_clean`, the ingested fleet — and therefore the WEFR
    /// selected set — must equal the uncorrupted baseline bit for bit.
    Ok {
        skips: SkipCounts,
        recovers_clean: bool,
    },
    /// Strict ingest must refuse the input with a `ParseCsv` error.
    StrictError,
}

struct Row {
    name: &'static str,
    /// Fleet-level perturbation applied before export.
    scenario: ScenarioConfig,
    /// Row-level corruption injected into the exported CSV.
    chaos: CsvChaos,
    tolerance: IngestTolerance,
    expect: Expect,
}

fn firmware() -> FirmwareRollout {
    FirmwareRollout {
        day: DAYS / 2,
        model: DriveModel::Mc1,
        attr: SmartAttribute::Rsc,
        raw_scale: 512.0,
        invert_norm: true,
    }
}

fn missing() -> MissingCoverage {
    MissingCoverage {
        vendor: Vendor::Mc,
        attr: SmartAttribute::Uce,
        batch_fraction: 0.5,
    }
}

fn churn() -> ReplacementChurn {
    ReplacementChurn {
        day: DAYS / 3,
        fraction: 0.3,
    }
}

fn rows() -> Vec<Row> {
    let clean_ok = |recovers_clean| Expect::Ok {
        skips: SkipCounts::default(),
        recovers_clean,
    };
    vec![
        Row {
            name: "clean fleet, strict ingest",
            scenario: ScenarioConfig::default(),
            chaos: CsvChaos::default(),
            tolerance: IngestTolerance::Strict,
            expect: clean_ok(true),
        },
        Row {
            name: "clean fleet, tolerant ingest is bit-identical",
            scenario: ScenarioConfig::default(),
            chaos: CsvChaos::default(),
            tolerance: IngestTolerance::Tolerant,
            expect: clean_ok(true),
        },
        Row {
            name: "duplicate rows, tolerant",
            scenario: ScenarioConfig::default(),
            chaos: CsvChaos {
                duplicates: 6,
                ..CsvChaos::default()
            },
            tolerance: IngestTolerance::Tolerant,
            expect: Expect::Ok {
                skips: SkipCounts {
                    duplicate_rows: 6,
                    ..SkipCounts::default()
                },
                recovers_clean: true,
            },
        },
        Row {
            name: "out-of-order rows, tolerant",
            scenario: ScenarioConfig::default(),
            chaos: CsvChaos {
                out_of_order: 4,
                ..CsvChaos::default()
            },
            tolerance: IngestTolerance::Tolerant,
            expect: Expect::Ok {
                skips: SkipCounts {
                    out_of_order_rows: 4,
                    ..SkipCounts::default()
                },
                recovers_clean: true,
            },
        },
        Row {
            name: "malformed lines, tolerant",
            scenario: ScenarioConfig::default(),
            chaos: CsvChaos {
                malformed: 5,
                ..CsvChaos::default()
            },
            tolerance: IngestTolerance::Tolerant,
            expect: Expect::Ok {
                skips: SkipCounts {
                    malformed_rows: 5,
                    ..SkipCounts::default()
                },
                recovers_clean: true,
            },
        },
        Row {
            name: "every chaos kind at once, tolerant",
            scenario: ScenarioConfig::default(),
            chaos: CsvChaos {
                duplicates: 3,
                out_of_order: 2,
                malformed: 3,
            },
            tolerance: IngestTolerance::Tolerant,
            expect: Expect::Ok {
                skips: SkipCounts {
                    duplicate_rows: 3,
                    out_of_order_rows: 2,
                    malformed_rows: 3,
                    backfilled_days: 0,
                },
                recovers_clean: true,
            },
        },
        Row {
            name: "chaos rejected by strict ingest",
            scenario: ScenarioConfig::default(),
            chaos: CsvChaos {
                duplicates: 1,
                out_of_order: 1,
                malformed: 1,
            },
            tolerance: IngestTolerance::Strict,
            expect: Expect::StrictError,
        },
        Row {
            name: "firmware rollout re-maps RSC mid-window",
            scenario: ScenarioConfig {
                seed: SCENARIO_SEED,
                firmware: Some(firmware()),
                ..ScenarioConfig::default()
            },
            chaos: CsvChaos::default(),
            tolerance: IngestTolerance::Strict,
            expect: clean_ok(false),
        },
        Row {
            name: "vendor batch missing UCE (NaN policy end to end)",
            scenario: ScenarioConfig {
                seed: SCENARIO_SEED,
                missing: Some(missing()),
                ..ScenarioConfig::default()
            },
            chaos: CsvChaos::default(),
            tolerance: IngestTolerance::Tolerant,
            expect: clean_ok(false),
        },
        Row {
            name: "replacement churn mid-window",
            scenario: ScenarioConfig {
                seed: SCENARIO_SEED,
                churn: Some(churn()),
                ..ScenarioConfig::default()
            },
            chaos: CsvChaos::default(),
            tolerance: IngestTolerance::Strict,
            expect: clean_ok(false),
        },
        Row {
            name: "perturbed fleet under full chaos, tolerant",
            scenario: ScenarioConfig {
                seed: SCENARIO_SEED,
                firmware: Some(firmware()),
                missing: Some(missing()),
                churn: Some(churn()),
            },
            chaos: CsvChaos {
                duplicates: 4,
                out_of_order: 2,
                malformed: 4,
            },
            tolerance: IngestTolerance::Tolerant,
            expect: Expect::Ok {
                skips: SkipCounts {
                    duplicate_rows: 4,
                    out_of_order_rows: 2,
                    malformed_rows: 4,
                    backfilled_days: 0,
                },
                recovers_clean: false,
            },
        },
    ]
}

fn fleet_csv(fleet: &Fleet) -> String {
    let mut buf = Vec::new();
    export_smart_csv(fleet, &mut buf).expect("export");
    String::from_utf8(buf).expect("utf8")
}

/// WEFR's globally selected feature names for a fleet, via the default
/// sampling pipeline on the MC1 cohort.
fn selected_names(fleet: &Fleet) -> Vec<String> {
    let samples = collect_samples(
        fleet,
        DriveModel::Mc1,
        0,
        DAYS - 1,
        &SamplingConfig::default(),
    )
    .expect("samples");
    let (matrix, labels, _) = base_matrix(fleet, DriveModel::Mc1, &samples).expect("matrix");
    assert!(labels.iter().any(|&l| l), "cohort needs failures");
    Wefr::default()
        .select(&SelectionInput::basic(&matrix, &labels))
        .expect("selection")
        .global
        .selected_names
}

fn jaccard(a: &[String], b: &[String]) -> f64 {
    let sa: std::collections::BTreeSet<&String> = a.iter().collect();
    let sb: std::collections::BTreeSet<&String> = b.iter().collect();
    let inter = sa.intersection(&sb).count();
    let union = sa.union(&sb).count();
    if union == 0 {
        1.0
    } else {
        // Set sizes are tiny and exact in f64.
        inter as f64 / union as f64
    }
}

#[test]
fn scenario_table_drives_ingest_and_selection_end_to_end() {
    let clean = Fleet::generate(&mixed_vendor_config(DAYS, FLEET_SEED).expect("config"));
    assert!(clean.n_failures() > 0, "chaos substrate needs failures");
    let tickets: Vec<TroubleTicket> = tickets_from_summaries(&clean.summaries());
    let clean_csv = fleet_csv(&clean);
    let baseline = selected_names(&clean);
    assert!(!baseline.is_empty(), "baseline selection must be non-empty");

    let table = rows();
    assert!(table.len() >= 8, "chaos table must keep at least 8 rows");
    for row in &table {
        // Fleet-level perturbation, then row-level CSV corruption.
        let perturbed = apply_scenario(&clean, &row.scenario).expect(row.name);
        let perturbed_csv = fleet_csv(&perturbed);
        let (dirty, injected) =
            inject_csv_chaos(&perturbed_csv, &row.chaos, SCENARIO_SEED).expect(row.name);

        let ingest_at = |workers: usize| {
            let ingest = IngestConfig {
                shard_rows: 37,
                workers,
                tolerance: row.tolerance,
                ..IngestConfig::default()
            };
            import_smart_csv_sharded_with_stats(
                dirty.as_bytes(),
                &tickets,
                clean.config().clone(),
                &ingest,
            )
        };

        match &row.expect {
            Expect::StrictError => {
                for workers in [1, 4] {
                    let err = ingest_at(workers).expect_err(row.name);
                    assert!(
                        matches!(err, DatasetError::ParseCsv { .. }),
                        "{}: workers={workers}: {err:?}",
                        row.name
                    );
                }
            }
            Expect::Ok {
                skips,
                recovers_clean,
            } => {
                assert_eq!(
                    injected, *skips,
                    "{}: injector's predicted counts disagree with the row",
                    row.name
                );
                let (fleet_1, stats_1) = ingest_at(1).expect(row.name);
                let (fleet_4, stats_4) = ingest_at(4).expect(row.name);
                // Exact skip accounting, identical at every worker count.
                assert_eq!(stats_1.skipped, *skips, "{}: workers=1", row.name);
                assert_eq!(stats_4.skipped, *skips, "{}: workers=4", row.name);
                // Fleet determinism across worker counts (CSV compare:
                // NaN-bearing fleets defeat PartialEq).
                let csv_1 = fleet_csv(&fleet_1);
                assert_eq!(csv_1, fleet_csv(&fleet_4), "{}: workers", row.name);
                // Recoverable chaos reconstructs the uncorrupted bytes.
                assert_eq!(
                    csv_1, perturbed_csv,
                    "{}: tolerant ingest must shed the chaos exactly",
                    row.name
                );

                let selected = selected_names(&fleet_1);
                assert!(!selected.is_empty(), "{}: empty selection", row.name);
                // Selection is deterministic end to end: re-ingesting and
                // re-selecting reproduces the same set.
                assert_eq!(
                    selected,
                    selected_names(&fleet_4),
                    "{}: selection must not depend on worker count",
                    row.name
                );
                let overlap = jaccard(&selected, &baseline);
                if *recovers_clean {
                    assert_eq!(
                        selected, baseline,
                        "{}: recovered fleet must reproduce the baseline set",
                        row.name
                    );
                } else {
                    assert!(
                        overlap > 0.0,
                        "{}: perturbed selection shares nothing with baseline",
                        row.name
                    );
                }
            }
        }
    }

    // The clean CSV itself must round-trip under both modes — anchor for
    // the `recovers_clean` rows above.
    let strict = IngestConfig::default();
    let (round, stats) = import_smart_csv_sharded_with_stats(
        clean_csv.as_bytes(),
        &tickets,
        clean.config().clone(),
        &strict,
    )
    .expect("clean round trip");
    assert_eq!(stats.skipped, SkipCounts::default());
    assert_eq!(fleet_csv(&round), clean_csv);
}
