#!/usr/bin/env bash
# CI gate: format, hermetic offline build, tests, docs, and a hard check
# that the dependency graph contains zero registry crates (DESIGN.md §5).
set -euo pipefail
cd "$(dirname "$0")/.."

step() { printf '\n==> %s\n' "$*"; }

step "cargo fmt --check"
cargo fmt --all -- --check

step "cargo build --release --offline (all targets)"
cargo build --release --offline --workspace --all-targets

step "cargo test -q --offline"
cargo test -q --offline --workspace

step "cargo doc --no-deps --offline"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --offline --workspace

step "hermeticity: dependency graph must contain only in-repo path crates"
# Every package in `cargo metadata` must live under this repo; registry
# crates carry a non-null "source" field.
external=$(cargo metadata --format-version 1 --offline \
  | tr ',' '\n' \
  | grep -o '"source":"[^"]*"' \
  | sort -u || true)
if [ -n "$external" ]; then
  echo "ERROR: external registry dependencies found:" >&2
  echo "$external" >&2
  exit 1
fi
count=$(cargo metadata --format-version 1 --offline \
  | grep -o '"name":"[a-z-]*","version"' | sort -u | wc -l)
echo "OK: $count workspace-local packages, zero registry crates"

step "all checks passed"
