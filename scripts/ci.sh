#!/usr/bin/env bash
# CI gate: format, hermetic offline build, tests, docs, a hard check that
# the dependency graph contains zero registry crates (DESIGN.md §5), the
# smart-lint static-analysis sweep (DESIGN.md §9), and a telemetry smoke
# run that must export a parseable run report (DESIGN.md §6).
set -euo pipefail
cd "$(dirname "$0")/.."

step() { printf '\n==> %s\n' "$*"; }

step "cargo fmt --check"
cargo fmt --all -- --check

step "cargo build --release --offline (all targets)"
cargo build --release --offline --workspace --all-targets

step "cargo test -q --offline"
cargo test -q --offline --workspace

step "cargo doc --no-deps --offline"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --offline --workspace

step "hermeticity: dependency graph must contain only in-repo path crates"
# check_hermetic parses the real metadata JSON (via smart-json) and fails on
# any package whose "source" is non-null, i.e. anything registry- or
# git-sourced.
cargo metadata --format-version 1 --offline \
  | cargo run -q --release --offline -p smart-integration --bin check_hermetic

step "smart-sync model checker: scenarios, mutation fixtures, coverage floors"
# The model suite runs the ported queue/watchdog/serve primitives through
# the deterministic scheduler (DESIGN.md §13): every pinned scenario must
# hold on every explored schedule, and the broken-queue mutation fixtures
# must be caught. check_model_coverage then re-runs the scenario sweep
# twice and fails if exploration fell below the committed schedule floors
# or diverged between runs at the same seed.
cargo test -q --offline -p smart-sync --features model
cargo run -q --release --offline -p smart-sync --features model \
  --bin check_model_coverage

step "smart-lint: workspace must pass every determinism/hermeticity rule"
tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT
# --deny-warnings makes any surviving violation fatal; the report gate then
# re-parses the JSON export and re-asserts cleanliness and rule coverage.
cargo run -q --release --offline -p smart-lint -- --deny-warnings --out "$tmpdir"
cargo run -q --release --offline -p smart-integration --bin check_lint_report \
  "$tmpdir/lint_workspace.json"

step "telemetry smoke: quickstart traces and exports a valid run report"
WEFR_LOG=debug WEFR_TELEMETRY_OUT="$tmpdir" \
  cargo run -q --release --offline -p smart-integration --example quickstart \
  > "$tmpdir/stdout.txt" 2> "$tmpdir/stderr.txt"
grep -q 'span rankers' "$tmpdir/stderr.txt" || {
  echo "ERROR: no ranker span lines on stderr at WEFR_LOG=debug" >&2
  exit 1
}
cargo run -q --release --offline -p smart-integration --bin check_telemetry_report \
  "$tmpdir/telemetry_quickstart.json" \
  rankers ensemble threshold_scan change_point wearout_split evaluate
# The count-weighted flamegraph is a pure function of the span structure, so
# the committed artifact must match this run byte for byte.
cmp "$tmpdir/flame_quickstart.svg" results/flame_quickstart.svg || {
  echo "ERROR: results/flame_quickstart.svg is stale; regenerate with" >&2
  echo "  WEFR_TELEMETRY_OUT=results cargo run --release --example quickstart" >&2
  exit 1
}

step "obs-alloc: telemetry tests under the counting allocator"
cargo test -q --offline -p smart-telemetry --features obs-alloc

step "observability overhead: full plane <=5% wall-clock, stdout untouched"
# bench_obs_overhead reruns the quickstart binary with every observability
# knob on (report, /metrics endpoint, watchdog, allocation counters) and
# off, alternating; the gate fails on >5% overhead or any stdout diff.
cargo run -q --release --offline -p wefr-bench --bin bench_obs_overhead -- \
  target/release/examples/quickstart --out "$tmpdir"
cargo run -q --release --offline -p smart-integration --bin check_obs_overhead \
  "$tmpdir/BENCH_pr7.json"

step "split-strategy bench: histogram training must not be slower than exact"
# A quick MC1-only run of the paired RF-training benchmark; the gate parses
# its JSON report and fails if the binned engine lost to the exact engine.
cargo run -q --release --offline -p wefr-bench --bin bench_split_strategy -- \
  --quick --days 240 --model mc1 --out "$tmpdir"
cargo run -q --release --offline -p smart-integration --bin check_split_bench \
  "$tmpdir/BENCH_pr3.json"

step "ingest bench: sharded reader must not be slower than single-threaded"
# A quick MC1-only run of the paired ingestion benchmark; the gate parses
# its JSON report and fails if the sharded reader at 1 worker lost to the
# single-threaded reference (multi-worker speedup is reported, not gated —
# it depends on the machine's core count).
cargo run -q --release --offline -p wefr-bench --bin bench_ingest -- \
  --quick --days 240 --model mc1 --out "$tmpdir"
cargo run -q --release --offline -p smart-integration --bin check_ingest_bench \
  "$tmpdir/BENCH_pr5.json"

step "scenario ablation: recoverable chaos must not move the WEFR selected set"
# A quick MC1-only run of the chaos scenario ablation; the gate parses its
# JSON report and fails if any row's skip accounting was inexact, or if a
# recoverable row (CSV chaos under tolerant ingest) drifted from the clean
# baseline's selection (DESIGN.md §11). Fleet-level perturbation rows are
# reported, not gated.
cargo run -q --release --offline -p wefr-bench --bin ablation_scenarios -- \
  --quick --days 240 --model mc1 --out "$tmpdir"
cargo run -q --release --offline -p smart-integration --bin check_scenario_stability \
  "$tmpdir/BENCH_pr6.json"

step "streaming generation: bit-identity, bounded window, pinned Fig. 1 census"
# A quick run of the streaming-generation benchmark; the gate parses its
# JSON report and fails if any bit-identity cell diverged from
# Fleet::generate or the bounded pipeline window stopped beating the
# materialized fleet (DESIGN.md §12). The committed paper-scale report is
# re-gated with the stricter --paper rules (500K drives, allocation
# receipts), and the pinned Fig. 1 survival census must regenerate byte
# for byte, like the flamegraph.
cargo run -q --release --offline -p wefr-bench --bin bench_gen_stream -- \
  --quick --census 2000 --out "$tmpdir"
cargo run -q --release --offline -p smart-integration --bin check_gen_bench \
  "$tmpdir/BENCH_pr8.json"
cargo run -q --release --offline -p smart-integration --bin check_gen_bench -- \
  --paper results/BENCH_pr8.json
cmp "$tmpdir/census_fig1.json" results/census_fig1.json || {
  echo "ERROR: results/census_fig1.json is stale; regenerate with" >&2
  echo "  cargo run --release -p wefr-bench --bin bench_gen_stream -- --quick --out results" >&2
  exit 1
}

step "serve smoke: daemon transcript deterministic across worker counts"
# The continuous-selection daemon replays a fixed-seed fleet, serves a
# scripted query session over its TCP listener, and prints the whole
# exchange (DESIGN.md §14). The transcript must be byte-identical across
# ingest worker counts and must match the committed golden file.
WEFR_WORKERS=1 cargo run -q --release --offline -p smart-serve -- --smoke \
  > "$tmpdir/serve_smoke_w1.txt"
WEFR_WORKERS=4 cargo run -q --release --offline -p smart-serve -- --smoke \
  > "$tmpdir/serve_smoke_w4.txt"
cmp "$tmpdir/serve_smoke_w1.txt" "$tmpdir/serve_smoke_w4.txt" || {
  echo "ERROR: serve smoke transcript depends on the ingest worker count" >&2
  exit 1
}
cmp "$tmpdir/serve_smoke_w1.txt" results/serve_smoke.txt || {
  echo "ERROR: results/serve_smoke.txt is stale; regenerate with" >&2
  echo "  cargo run --release -p smart-serve -- --smoke > results/serve_smoke.txt" >&2
  exit 1
}

step "all checks passed"
